package core

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"mobieyes/internal/grid"
	"mobieyes/internal/model"
	"mobieyes/internal/msg"
	"mobieyes/internal/obs"
	"mobieyes/internal/obs/cost"
	"mobieyes/internal/obs/telemetry"
	"mobieyes/internal/obs/trace"
)

// ClusterServer is the distributed MobiEyes server: a router tier that owns
// query lifecycle and message routing, over N worker nodes each holding the
// FOT, SQT and RQI rows of the focal objects whose current grid cell falls
// in that node's assigned cell range. Nodes are driven through the
// NodeHandle surface, so the same router runs over in-process NodeServers
// (the configuration the differential oracle compares against the serial
// and sharded servers) and over internal/cluster RemoteNodes speaking the
// wire protocol to worker processes.
//
// Unlike the sharded server's hash partitioning, nodes own contiguous cell
// ranges (spans) so a worker's working set is spatially local and
// rebalancing moves a boundary rather than rehashing the world. The router
// serializes all dispatch under one mutex: the cluster tier distributes
// state, the sharded tier parallelizes it — a worker node can itself be
// deployed over a sharded engine later without changing this router.
//
// Cross-node focal handoff is a two-phase, byte-mediated transfer: the
// source node drains its sends and detaches the focal's complete state as
// an encoded focal slice (ExtractFocal), then the destination installs the
// slice and acknowledges (InjectFocal) before the router flips its routing
// tables — no result entry is lost or duplicated, which the three-way
// snapshot oracle verifies byte-for-byte. See DESIGN.md §13.
type ClusterServer struct {
	g     *grid.Grid
	opts  Options
	down  Downlink
	nodes []NodeHandle
	// local mirrors nodes for in-process NodeServers (nil per remote node);
	// tracing, accounting, result listeners and restore need direct engine
	// access and degrade gracefully over the wire.
	local []*NodeServer

	// spanLo/spanHi assign each node the dense cell indices [lo, hi); the
	// spans of live nodes partition the grid. epoch increments on every
	// reassignment so workers can discard stale AssignRange frames.
	spanLo, spanHi []int
	live           []bool
	epoch          uint64
	onAssign       func(epoch uint64, node, lo, hi int)

	// qidCounter holds the last assigned query identifier (1-based sequence,
	// matching the serial server).
	qidCounter int64

	// ops counts router-level operations; upl counts uplinks handled outside
	// any node (departures); migrations counts cross-node focal handoffs;
	// nUpl counts uplinks dispatched to each node.
	ops        *obs.Counter
	upl        *obs.Counter
	migrations *obs.Counter
	nUpl       []*obs.Counter

	// inflight counts uplinks currently inside HandleUplinkTraced —
	// queued on cs.mu or executing a NodeOp round-trip. Always maintained
	// (two atomic adds per uplink); zero at quiescence.
	inflight atomic.Int64
	// migrationsAdminDone counts admin (rebalancing/drain) focal moves;
	// kept separate from migrations, which tracks protocol handoffs.
	migrationsAdminDone int

	obsm  *serverObs
	rec   *trace.Recorder
	tdown TracedDownlink
	acct  *cost.Accountant

	// tel is the cluster telemetry plane (nil when disabled); probe runs one
	// synchronous heartbeat exchange with a node — the TCP tier installs
	// RemoteNode.Heartbeat, the in-process tier needs none (node state is
	// directly visible).
	tel   *telemetry.Plane
	probe func(node int) error

	// mu serializes all routing and node dispatch. Routing tables mirror the
	// sharded server's: focalNode/queryNode map ownership, pending holds
	// installations waiting on a FocalInfoRequest (queries exist only at the
	// router until their focal object is located).
	mu         sync.Mutex
	focalNode  map[model.ObjectID]int
	queryNode  map[model.QueryID]int
	pending    map[model.ObjectID][]pendingInstall
	pendingExp map[model.QueryID]model.Time

	// journal holds each node's last checkpoint (focal slices keyed by oid),
	// replayed into the survivors when the node crashes without a drain.
	// armedHandoffCrash (-1 disarmed) and suppressReplay are test hooks —
	// see ArmCrashOnHandoff and SuppressRecoveryReplay in checkpoint.go.
	journal           []nodeJournal
	armedHandoffCrash int
	suppressReplay    bool

	// autoRecover lets TelemetryRound trigger crash recovery on critical
	// liveness alerts instead of only reporting them (SetAutoRecover).
	autoRecover bool
}

// NewClusterServer returns a cluster router over n in-process worker nodes;
// n <= 0 selects 2. The downlink carries both router-level sends
// (FocalInfoRequest, cross-node QueryInstall unions) and node-level sends.
func NewClusterServer(g *grid.Grid, opts Options, down Downlink, n int) *ClusterServer {
	if n <= 0 {
		n = 2
	}
	handles := make([]NodeHandle, n)
	local := make([]*NodeServer, n)
	for i := range handles {
		ns := NewNodeServer(g, opts, down)
		handles[i] = ns
		local[i] = ns
	}
	return newClusterServer(g, opts, down, handles, local)
}

// NewClusterServerOver returns a cluster router over caller-provided node
// handles — the entry point for the TCP tier, where each handle forwards to
// a worker process. Handles that are in-process NodeServers get full
// tracing/accounting wiring.
func NewClusterServerOver(g *grid.Grid, opts Options, down Downlink, handles []NodeHandle) *ClusterServer {
	local := make([]*NodeServer, len(handles))
	for i, h := range handles {
		if ns, ok := h.(*NodeServer); ok {
			local[i] = ns
		}
	}
	return newClusterServer(g, opts, down, handles, local)
}

func newClusterServer(g *grid.Grid, opts Options, down Downlink, handles []NodeHandle, local []*NodeServer) *ClusterServer {
	cs := &ClusterServer{
		g:          g,
		opts:       opts,
		down:       down,
		nodes:      handles,
		local:      local,
		spanLo:     make([]int, len(handles)),
		spanHi:     make([]int, len(handles)),
		live:       make([]bool, len(handles)),
		ops:        obs.NewCounter(),
		upl:        obs.NewCounter(),
		migrations: obs.NewCounter(),
		nUpl:       make([]*obs.Counter, len(handles)),
		focalNode:  make(map[model.ObjectID]int),
		queryNode:  make(map[model.QueryID]int),
		pending:    make(map[model.ObjectID][]pendingInstall),
		pendingExp: make(map[model.QueryID]model.Time),

		journal:           make([]nodeJournal, len(handles)),
		armedHandoffCrash: -1,
	}
	for i := range cs.live {
		cs.live[i] = true
		cs.nUpl[i] = obs.NewCounter()
		cs.journal[i].slices = make(map[model.ObjectID][]byte)
	}
	cs.computeSpans()
	return cs
}

// NumNodes returns the number of nodes (live and dead).
func (cs *ClusterServer) NumNodes() int { return len(cs.nodes) }

// InflightOps returns the number of uplinks currently inside the router's
// dispatch funnel — queued on the router mutex or executing node operations.
// Zero at quiescence.
func (cs *ClusterServer) InflightOps() int64 { return cs.inflight.Load() }

// Epoch returns the current span-assignment epoch.
func (cs *ClusterServer) Epoch() uint64 {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.epoch
}

// SetAssignListener installs a callback invoked (under the router lock) for
// every node on each span reassignment — the TCP tier ships AssignRange
// frames from it. Dead nodes are reported with an empty span.
func (cs *ClusterServer) SetAssignListener(fn func(epoch uint64, node, lo, hi int)) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.onAssign = fn
}

// SetTelemetry attaches the cluster telemetry plane: handoff and rebalance
// edges notify it, and TelemetryRound evaluates its invariant watchdog
// against the router's authoritative span view.
func (cs *ClusterServer) SetTelemetry(p *telemetry.Plane) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.tel = p
}

// SetProbe installs the per-node heartbeat probe TelemetryRound runs before
// each watchdog evaluation. The TCP tier installs RemoteNode.Heartbeat here;
// probe errors are the probe's to report (NoteProbeError) — the round only
// needs the exchange to have happened.
func (cs *ClusterServer) SetProbe(fn func(node int) error) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.probe = fn
}

// viewLocked builds the watchdog's authoritative cluster view. cs.mu held.
func (cs *ClusterServer) viewLocked() telemetry.View {
	v := telemetry.View{Epoch: cs.epoch, Cells: cs.g.NumCells()}
	for i := range cs.nodes {
		v.Spans = append(v.Spans, telemetry.SpanView{
			Node: i, Lo: cs.spanLo[i], Hi: cs.spanHi[i], Live: cs.live[i],
		})
	}
	return v
}

// TelemetryRound runs one telemetry round: pull a checkpoint delta from
// every live node into the router journal (the recovery watermark —
// DESIGN.md §15), probe every live node (each probe pumps that node's
// pending telemetry into the plane and reports its heartbeat status), then
// evaluate the invariant watchdog. The remote server's housekeeping loop
// drives this about once a second; handoff and rebalance edges run
// evaluation-only rounds inline. Returns the active alerts (nil with no
// plane attached).
//
// With auto-recovery enabled (SetAutoRecover), a critical heartbeat-stale
// or node-unreachable alert against a live node triggers the crash
// recovery path inline: the node is fenced, its journaled focal state
// replays into the survivors, and a follow-up watchdog round resolves the
// alerts it can.
func (cs *ClusterServer) TelemetryRound() []telemetry.Alert {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	_ = cs.checkpointLocked()
	alerts := cs.telemetryRoundLocked(true)
	if !cs.autoRecover {
		return alerts
	}
	for _, a := range alerts {
		if a.Severity != telemetry.SeverityCritical {
			continue
		}
		if a.Check != telemetry.CheckHeartbeat && a.Check != telemetry.CheckUnreachable {
			continue
		}
		i := a.Node
		if i < 0 || i >= len(cs.nodes) || !cs.live[i] || cs.liveCount() <= 1 {
			continue
		}
		cs.crashLocked(i, 0)
		alerts = cs.telemetryRoundLocked(false)
	}
	return alerts
}

// SetAutoRecover enables router-driven crash recovery: when the watchdog
// declares a live node dead (missed heartbeats or unreachable), the router
// fences it and replays its journal instead of just alerting. Off by
// default so operators can choose alert-and-wait.
func (cs *ClusterServer) SetAutoRecover(on bool) {
	cs.mu.Lock()
	cs.autoRecover = on
	cs.mu.Unlock()
}

// liveCount returns the number of live nodes. cs.mu held.
func (cs *ClusterServer) liveCount() int {
	n := 0
	for _, l := range cs.live {
		if l {
			n++
		}
	}
	return n
}

func (cs *ClusterServer) telemetryRoundLocked(probe bool) []telemetry.Alert {
	if cs.tel == nil {
		return nil
	}
	if probe && cs.probe != nil {
		for i := range cs.nodes {
			if cs.live[i] {
				// Probe errors reach the plane via NoteProbeError inside
				// the probe; the round below raises node-unreachable.
				_ = cs.probe(i)
			}
		}
	}
	return cs.tel.Round(cs.viewLocked())
}

// focalWeight biases span boundaries toward splitting cells that currently
// host focal objects, so rebalancing evens out table load, not just area.
const focalWeight = 4

// computeSpans repartitions the grid's dense cell indices into contiguous
// spans over the live nodes, weighting each cell by the focal objects it
// hosts, and bumps the epoch. Requires cs.mu held (or construction).
func (cs *ClusterServer) computeSpans() {
	numCells := cs.g.NumCells()
	var liveIdx []int
	for i, l := range cs.live {
		if l {
			liveIdx = append(liveIdx, i)
		}
	}
	w := make([]int, numCells)
	for i := range w {
		w[i] = 1
	}
	total := numCells
	for i, nd := range cs.nodes {
		if !cs.live[i] {
			continue
		}
		for _, oid := range nd.FocalIDs() {
			if c, ok := nd.FocalCell(oid); ok {
				w[cs.g.CellIndex(c)] += focalWeight
				total += focalWeight
			}
		}
	}
	for i := range cs.spanLo {
		cs.spanLo[i], cs.spanHi[i] = 0, 0
	}
	cell, rem := 0, total
	for k, ni := range liveIdx {
		lo := cell
		if k == len(liveIdx)-1 {
			cell = numCells
		} else {
			left := len(liveIdx) - k
			target := (rem + left - 1) / left
			acc := 0
			for cell < numCells && acc < target {
				acc += w[cell]
				cell++
			}
			rem -= acc
		}
		cs.spanLo[ni], cs.spanHi[ni] = lo, cell
	}
	cs.epoch++
	if cs.onAssign != nil {
		for i := range cs.nodes {
			cs.onAssign(cs.epoch, i, cs.spanLo[i], cs.spanHi[i])
		}
	}
}

// nodeOf returns the live node owning cell c's span.
func (cs *ClusterServer) nodeOf(c grid.CellID) int {
	idx := cs.g.CellIndex(c)
	for i := range cs.nodes {
		if cs.live[i] && idx >= cs.spanLo[i] && idx < cs.spanHi[i] {
			return i
		}
	}
	panic(fmt.Sprintf("core: cell index %d owned by no live node", idx))
}

// SetAccountant attaches a cost accountant to the router and every
// in-process node (nil = off). Not safe to call concurrently with dispatch.
func (cs *ClusterServer) SetAccountant(a *cost.Accountant) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.acct = a
	for _, ns := range cs.local {
		if ns != nil {
			ns.srv.acct = a
		}
	}
	a.SetMode(cs.opts.Mode.String())
}

// acctNodeUplink charges one dispatched uplink to node ni's ledger (-1 =
// the router ledger, for stale drops and router-level work), keeping the
// node-sum-plus-router == global identity the ledger oracle checks.
func (cs *ClusterServer) acctNodeUplink(ni int, m msg.Message) {
	if cs.acct == nil {
		return
	}
	cs.acct.NodeUplink(ni, m.Kind(), m.Size())
}

// SetTracer attaches a flight recorder to the router and every in-process
// node. Nodes record as "node0", "node1", …; router-level work (handoffs,
// cross-node unicasts, uplink ingress) records as "router".
func (cs *ClusterServer) SetTracer(rec *trace.Recorder) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.rec = rec
	cs.tdown, _ = cs.down.(TracedDownlink)
	for i, ns := range cs.local {
		if ns != nil {
			ns.SetTracer(rec, "node"+strconv.Itoa(i))
		}
	}
}

// mintRoot starts a fresh trace for a router-level API ingress.
func (cs *ClusterServer) mintRoot(oid model.ObjectID, qid model.QueryID, note string) trace.ID {
	if cs.rec == nil {
		return 0
	}
	tid := cs.rec.NextID()
	cs.rec.Event(tid, trace.KindIngress, "router", int64(oid), int64(qid), note)
	return tid
}

// unicast is the router-level unicast funnel (sends outside any node).
func (cs *ClusterServer) unicast(oid model.ObjectID, m msg.Message, tid trace.ID) {
	if cs.acct != nil {
		_, qid := TraceRef(m)
		sz := m.Size()
		cs.acct.ObjectDown(int64(oid), sz, 1)
		if qid != 0 {
			cs.acct.QueryDown(qid, sz, 1)
		}
	}
	if cs.rec != nil {
		_, qid := TraceRef(m)
		cs.rec.Event(tid, trace.KindUnicast, "router", int64(oid), qid, m.Kind().String())
		if cs.tdown != nil {
			cs.tdown.UnicastTraced(oid, m, tid)
			return
		}
	}
	cs.down.Unicast(oid, m)
}

// InstallQuery starts installation of a moving query (§3.3), exactly like
// the serial server but routed to the node owning the focal object.
func (cs *ClusterServer) InstallQuery(focal model.ObjectID, region model.Region, filter model.Filter, focalMaxVel float64) model.QueryID {
	return cs.install(focal, region, filter, focalMaxVel, 0)
}

// InstallQueryUntil installs a query that expires at the given time.
func (cs *ClusterServer) InstallQueryUntil(focal model.ObjectID, region model.Region, filter model.Filter, focalMaxVel float64, expiry model.Time) model.QueryID {
	return cs.install(focal, region, filter, focalMaxVel, expiry)
}

func (cs *ClusterServer) install(focal model.ObjectID, region model.Region, filter model.Filter, focalMaxVel float64, expiry model.Time) model.QueryID {
	cs.mu.Lock()
	cs.qidCounter++
	qid := model.QueryID(cs.qidCounter)
	tid := cs.mintRoot(focal, qid, "InstallQuery")
	q := model.Query{ID: qid, Focal: focal, Region: region, Filter: filter}
	if ni, ok := cs.focalNode[focal]; ok {
		cs.nodes[ni].CompleteInstall(qid, q, focalMaxVel, expiry, tid)
		cs.queryNode[qid] = ni
		cs.mu.Unlock()
		return qid
	}
	// §3.3 step 3: the focal object is unknown — request its motion state.
	cs.pending[focal] = append(cs.pending[focal], pendingInstall{qid, q, focalMaxVel})
	if expiry != 0 {
		cs.pendingExp[qid] = expiry
	}
	first := len(cs.pending[focal]) == 1
	cs.mu.Unlock()
	cs.ops.Add(1)
	if first {
		cs.unicast(focal, msg.FocalInfoRequest{OID: focal}, tid)
	}
	return qid
}

// RemoveQuery uninstalls a query from its owning node.
func (cs *ClusterServer) RemoveQuery(qid model.QueryID) bool {
	tid := cs.mintRoot(0, qid, "RemoveQuery")
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.removeQueryLocked(qid, tid)
}

func (cs *ClusterServer) removeQueryLocked(qid model.QueryID, tid trace.ID) bool {
	ni, ok := cs.queryNode[qid]
	if !ok {
		return false
	}
	removed, focal, stillFocal := cs.nodes[ni].RemoveQuery(qid, tid)
	delete(cs.queryNode, qid)
	if removed && !stillFocal {
		delete(cs.focalNode, focal)
	}
	return removed
}

// ExpireQueries removes every query whose expiry has passed and returns the
// removed identifiers (sorted), like the serial server.
func (cs *ClusterServer) ExpireQueries(now model.Time) []model.QueryID {
	tid := cs.mintRoot(0, 0, "ExpireQueries")
	cs.mu.Lock()
	defer cs.mu.Unlock()
	var expired []model.QueryID
	for i, nd := range cs.nodes {
		if cs.live[i] {
			expired = append(expired, nd.DueExpiries(now)...)
		}
	}
	for qid, exp := range cs.pendingExp {
		if exp <= now {
			// Pending past its deadline: forget the expiry; if the install
			// ever completes the query runs unbounded, like the serial server.
			delete(cs.pendingExp, qid)
			expired = append(expired, qid)
		}
	}
	sort.Slice(expired, func(i, j int) bool { return expired[i] < expired[j] })
	for _, qid := range expired {
		cs.removeQueryLocked(qid, tid)
	}
	return expired
}

// HandleUplink dispatches any uplink message to its handler; it panics on
// message kinds the MobiEyes server does not consume, exactly like the
// serial server.
func (cs *ClusterServer) HandleUplink(m msg.Message) { cs.HandleUplinkTraced(m, 0) }

// HandleUplinkTraced is HandleUplink with an inbound trace ID — the uplink
// ingress point when running behind a tracing transport.
func (cs *ClusterServer) HandleUplinkTraced(m msg.Message, tid trace.ID) {
	// In-flight depth of the router's dispatch funnel: everything between
	// ingress and handler return, including time queued on cs.mu — the
	// saturation signal for the serialized router tier.
	cs.inflight.Add(1)
	defer cs.inflight.Add(-1)
	if cs.acct != nil {
		oid, qid := TraceRef(m)
		sz := m.Size()
		if oid != 0 {
			cs.acct.ObjectUp(oid, sz)
		}
		if qid != 0 {
			cs.acct.QueryUp(qid, sz)
		}
	}
	if cs.rec != nil {
		if tid == 0 {
			tid = cs.rec.NextID()
		}
		oid, qid := TraceRef(m)
		cs.rec.Event(tid, trace.KindIngress, "router", oid, qid, m.Kind().String())
	}
	if o := cs.obsm; o != nil && o.uplinkLat != nil {
		start := time.Now()
		cs.dispatchUplink(m, tid)
		o.uplinkLat.observe(m.Kind(), start)
		return
	}
	cs.dispatchUplink(m, tid)
}

func (cs *ClusterServer) dispatchUplink(m msg.Message, tid trace.ID) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	switch mm := m.(type) {
	case msg.VelocityReport:
		cs.onVelocityReport(mm, tid)
	case msg.CellChangeReport:
		cs.onCellChangeReport(mm, tid)
	case msg.ContainmentReport:
		cs.onContainmentReport(mm, tid)
	case msg.GroupContainmentReport:
		cs.onGroupContainmentReport(mm, tid)
	case msg.FocalInfoResponse:
		cs.onFocalInfoResponse(mm, tid)
	case msg.DepartureReport:
		cs.onDepartureReport(mm, tid)
	default:
		panic(fmt.Sprintf("core: cluster server cannot handle %v", m.Kind()))
	}
}

func (cs *ClusterServer) onVelocityReport(m msg.VelocityReport, tid trace.ID) {
	ni, ok := cs.focalNode[m.OID]
	if !ok {
		cs.acctNodeUplink(-1, m) // stale drop: charge the router ledger
		return
	}
	cs.nUpl[ni].Add(1)
	cs.acctNodeUplink(ni, m)
	cs.nodes[ni].VelocityReport(m, tid)
}

func (cs *ClusterServer) onContainmentReport(m msg.ContainmentReport, tid trace.ID) {
	ni, ok := cs.queryNode[m.QID]
	if !ok {
		cs.acctNodeUplink(-1, m) // stale drop: charge the router ledger
		return
	}
	cs.nUpl[ni].Add(1)
	cs.acctNodeUplink(ni, m)
	cs.nodes[ni].ContainmentReport(m, tid)
}

func (cs *ClusterServer) onGroupContainmentReport(m msg.GroupContainmentReport, tid trace.ID) {
	// All queries of a group share a focal object and therefore a node, so
	// the whole bitmap resolves in one place.
	for _, qid := range m.QIDs {
		if ni, ok := cs.queryNode[qid]; ok {
			cs.nUpl[ni].Add(1)
			cs.acctNodeUplink(ni, m)
			cs.nodes[ni].GroupContainmentReport(m, tid)
			return
		}
	}
	cs.acctNodeUplink(-1, m) // no query resolvable: charge the router ledger
}

func (cs *ClusterServer) onFocalInfoResponse(m msg.FocalInfoResponse, tid trace.ID) {
	ni := cs.nodeOf(cs.g.CellOf(m.Pos))
	cs.nUpl[ni].Add(1)
	cs.acctNodeUplink(ni, m)
	cs.applyFocalInfo(m.OID, model.MotionState{Pos: m.Pos, Vel: m.Vel, Tm: m.Tm}, tid)
}

// applyFocalInfo refreshes oid's FOT row from a reported motion state —
// handing it off when the reported cell belongs to another node's span —
// and completes pending installations.
func (cs *ClusterServer) applyFocalInfo(oid model.ObjectID, st model.MotionState, tid trace.ID) {
	cell := cs.g.CellOf(st.Pos)
	di := cs.nodeOf(cell)
	if si, known := cs.focalNode[oid]; known && si != di {
		cs.handoff(si, di, oid, st, cell, false, tid)
	} else {
		cs.nodes[di].UpsertFocal(oid, st, tid)
		cs.focalNode[oid] = di
	}
	if len(cs.pending[oid]) == 0 {
		return
	}
	for _, p := range cs.pending[oid] {
		var exp model.Time
		if e, ok := cs.pendingExp[p.qid]; ok {
			exp = e
			delete(cs.pendingExp, p.qid)
		}
		cs.nodes[di].CompleteInstall(p.qid, p.query, p.maxVel, exp, tid)
		cs.queryNode[p.qid] = di
	}
	delete(cs.pending, oid)
}

// handoff runs the two-phase cross-node focal transfer and flips the
// routing tables: extract the encoded slice from the source (which has
// drained its sends when the call returns), inject it into the destination,
// then repoint focalNode/queryNode. relocate selects the §3.5 monitoring-
// region recomputation on the destination, exactly like the serial server's
// in-table relocation.
func (cs *ClusterServer) handoff(si, di int, oid model.ObjectID, st model.MotionState, cell grid.CellID, relocate bool, tid trace.ID) {
	if cs.rec != nil {
		cs.rec.Event(tid, trace.KindMigrate, "router", int64(oid), 0, fmt.Sprintf("node%d -> node%d", si, di))
	}
	// Checkpoint barrier: journal the source's rows before the destructive
	// extract, so a crash between the two phases loses nothing — the slice
	// in hand and the journal agree byte-for-byte at this instant. A failed
	// pull leaves the journal at its previous watermark (see DESIGN.md §15).
	_ = cs.checkpointNodeLocked(si)
	slice, err := cs.nodes[si].ExtractFocal(oid, false, tid)
	if err != nil {
		panic(fmt.Sprintf("core: handoff extract of focal %d from node %d: %v", oid, si, err))
	}
	if cs.armedHandoffCrash == si {
		// Armed mid-handoff crash: the source dies holding nothing (the
		// extract already detached the slice), the router holds the only
		// copy. The journal entry is superseded by the in-hand slice —
		// drop it so replay cannot inject the focal a second time, recover
		// the rest of the journal, then continue phase two against
		// whichever node owns the cell after the fence.
		cs.armedHandoffCrash = -1
		delete(cs.journal[si].slices, oid)
		cs.crashLocked(si, tid)
		di = cs.nodeOf(cell)
	}
	rec, _, _, err := decodeFocalSlice(slice)
	if err != nil {
		panic(fmt.Sprintf("core: handoff slice of focal %d: %v", oid, err))
	}
	if err := cs.nodes[di].InjectFocal(slice, st, cell, relocate, false, tid); err != nil {
		panic(fmt.Sprintf("core: handoff inject of focal %d into node %d: %v", oid, di, err))
	}
	cs.migrations.Add(1)
	cs.focalNode[oid] = di
	for _, qid := range rec.fe.queries {
		cs.queryNode[qid] = di
	}
	// Handoff edge: notify the telemetry plane and evaluate the watchdog
	// immediately (without probing — over the wire, both nodes' telemetry
	// already streamed in ahead of the extract/inject acknowledgements).
	cs.tel.NoteHandoff(si, di)
	cs.telemetryRoundLocked(false)
}

func (cs *ClusterServer) onCellChangeReport(m msg.CellChangeReport, tid trace.ID) {
	st := model.MotionState{Pos: m.Pos, Vel: m.Vel, Tm: m.Tm}
	if !cs.g.Valid(m.PrevCell) {
		// (Re)join: drop stale result entries across every node before the
		// object re-reports, exactly like the serial server.
		for i, nd := range cs.nodes {
			if cs.live[i] {
				nd.ClearResults(m.OID, tid)
			}
		}
	}
	if len(cs.pending[m.OID]) > 0 {
		// The report carries the object's motion state; complete pending
		// installs from it (the FocalInfoRequest may have been lost).
		cs.applyFocalInfo(m.OID, st, tid)
	}
	ni := cs.nodeOf(m.NewCell)
	cs.nUpl[ni].Add(1)
	cs.acctNodeUplink(ni, m)
	cs.focalCellChange(m.OID, st, m.NewCell, tid)
	cs.sendNewNearbyQueries(m.OID, m.PrevCell, m.NewCell, tid)
	cs.ops.Add(1)
}

// focalCellChange routes a focal object's cell crossing: node-local when
// the new cell stays in the owner's span, otherwise a cross-node handoff
// with monitoring-region relocation on the destination.
func (cs *ClusterServer) focalCellChange(oid model.ObjectID, st model.MotionState, newCell grid.CellID, tid trace.ID) {
	si, ok := cs.focalNode[oid]
	if !ok {
		return // not focal: nothing to relocate
	}
	di := cs.nodeOf(newCell)
	if si == di {
		cs.nodes[si].FocalCellChange(oid, st, newCell, tid)
		return
	}
	cs.handoff(si, di, oid, st, newCell, true, tid)
}

// sendNewNearbyQueries unions RQI(newCell) \ RQI(prevCell) across nodes and
// ships the result to the object, ascending by query ID exactly like the
// serial server.
func (cs *ClusterServer) sendNewNearbyQueries(oid model.ObjectID, prevCell, newCell grid.CellID, tid trace.ID) {
	var fresh []msg.QueryState
	for i, nd := range cs.nodes {
		if cs.live[i] {
			fresh = append(fresh, nd.FreshQueryStates(prevCell, newCell)...)
		}
	}
	if len(fresh) == 0 {
		return
	}
	sort.Slice(fresh, func(i, j int) bool { return fresh[i].QID < fresh[j].QID })
	cs.unicast(oid, msg.QueryInstall{Queries: fresh}, tid)
	cs.ops.Add(1)
}

func (cs *ClusterServer) onDepartureReport(m msg.DepartureReport, tid trace.ID) {
	cs.upl.Add(1)
	cs.acctNodeUplink(-1, m) // handled across nodes: charge the router ledger
	for i, nd := range cs.nodes {
		if cs.live[i] {
			nd.DepartSweep(m.OID, tid)
		}
	}
	if si, ok := cs.focalNode[m.OID]; ok {
		for _, qid := range cs.nodes[si].DepartFocal(m.OID, tid) {
			delete(cs.queryNode, qid)
		}
		delete(cs.focalNode, m.OID)
	}
	for _, p := range cs.pending[m.OID] {
		delete(cs.pendingExp, p.qid)
	}
	delete(cs.pending, m.OID)
	cs.ops.Add(1)
}

// KillNode fail-stops node i *gracefully*: its span is redistributed over
// the surviving nodes and every focal it owns is drained to the new owners
// via admin (charge-free) handoffs, so protocol state, results and cost
// ledgers are preserved exactly. Killing the last live node is refused. A
// node lost *without* a drain is CrashNode's business: its rows replay
// from the router's checkpoint journal — see DESIGN.md §15.
func (cs *ClusterServer) KillNode(i int) error {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if i < 0 || i >= len(cs.nodes) {
		return fmt.Errorf("core: no such node %d", i)
	}
	if !cs.live[i] {
		return fmt.Errorf("core: node %d is already dead", i)
	}
	liveCount := 0
	for _, l := range cs.live {
		if l {
			liveCount++
		}
	}
	if liveCount == 1 {
		return fmt.Errorf("core: cannot kill the last live node")
	}
	cs.live[i] = false
	// The drain moves every focal off the node, so its journal is dead
	// weight; drop it rather than letting it shadow the handed-off rows.
	cs.journal[i] = nodeJournal{slices: make(map[model.ObjectID][]byte)}
	return cs.rebalanceLocked()
}

// Rebalance recomputes span assignments from the current focal distribution
// and migrates misplaced focals to their new owners via admin handoffs.
// Returns the number of focals moved.
func (cs *ClusterServer) Rebalance() (int, error) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	before := cs.migrationsAdminDone
	err := cs.rebalanceLocked()
	return cs.migrationsAdminDone - before, err
}

func (cs *ClusterServer) rebalanceLocked() error {
	cs.computeSpans()
	type move struct {
		si, di int
		oid    model.ObjectID
	}
	var moves []move
	for i, nd := range cs.nodes {
		for _, oid := range nd.FocalIDs() {
			cell, ok := nd.FocalCell(oid)
			if !ok {
				continue
			}
			if want := cs.nodeOf(cell); want != i {
				moves = append(moves, move{si: i, di: want, oid: oid})
			}
		}
	}
	for _, mv := range moves {
		if err := cs.adminHandoff(mv.si, mv.di, mv.oid); err != nil {
			return err
		}
	}
	// Rebalance edge (also reached by KillNode): re-evaluate the watchdog
	// against the fresh span assignment.
	cs.telemetryRoundLocked(false)
	return nil
}

// adminHandoff moves a focal between nodes without touching the protocol
// cost model: rebalancing and drains are infrastructure, not messages on
// the wireless medium, so the serial-vs-clustered ledger identity holds
// across them.
func (cs *ClusterServer) adminHandoff(si, di int, oid model.ObjectID) error {
	slice, err := cs.nodes[si].ExtractFocal(oid, true, 0)
	if err != nil {
		return fmt.Errorf("core: admin handoff extract focal %d from node %d: %w", oid, si, err)
	}
	rec, st, cell, err := decodeFocalSlice(slice)
	if err != nil {
		return fmt.Errorf("core: admin handoff slice of focal %d: %w", oid, err)
	}
	if err := cs.nodes[di].InjectFocal(slice, st, cell, false, true, 0); err != nil {
		return fmt.Errorf("core: admin handoff inject focal %d into node %d: %w", oid, di, err)
	}
	if cs.rec != nil {
		cs.rec.Event(0, trace.KindMigrate, "router", int64(oid), 0, fmt.Sprintf("node%d -> node%d (rebalance)", si, di))
	}
	cs.focalNode[oid] = di
	for _, qid := range rec.fe.queries {
		cs.queryNode[qid] = di
	}
	cs.migrationsAdminDone++
	return nil
}

// SetResultListener installs a callback for every result change on the
// in-process nodes. Remote nodes report results on their own side.
func (cs *ClusterServer) SetResultListener(fn func(ResultEvent)) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	for _, ns := range cs.local {
		if ns != nil {
			ns.srv.SetResultListener(fn)
		}
	}
}

// Result returns the current result set of a query as a sorted slice.
func (cs *ClusterServer) Result(qid model.QueryID) []model.ObjectID {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	ni, ok := cs.queryNode[qid]
	if !ok {
		return nil
	}
	return cs.nodes[ni].Result(qid)
}

// ResultContains reports whether oid is currently in qid's result.
func (cs *ClusterServer) ResultContains(qid model.QueryID, oid model.ObjectID) bool {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	ni, ok := cs.queryNode[qid]
	if !ok {
		return false
	}
	return cs.nodes[ni].ResultContains(qid, oid)
}

// ResultSize returns |result| for a query (0 for unknown queries).
func (cs *ClusterServer) ResultSize(qid model.QueryID) int {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	ni, ok := cs.queryNode[qid]
	if !ok {
		return 0
	}
	return cs.nodes[ni].ResultSize(qid)
}

// Query returns the descriptor of an installed query.
func (cs *ClusterServer) Query(qid model.QueryID) (model.Query, bool) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	ni, ok := cs.queryNode[qid]
	if !ok {
		return model.Query{}, false
	}
	return cs.nodes[ni].Query(qid)
}

// MonRegion returns the current monitoring region of a query.
func (cs *ClusterServer) MonRegion(qid model.QueryID) (grid.CellRange, bool) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	ni, ok := cs.queryNode[qid]
	if !ok {
		return grid.CellRange{}, false
	}
	return cs.nodes[ni].MonRegion(qid)
}

// NumQueries returns the number of installed queries across all nodes.
func (cs *ClusterServer) NumQueries() int {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	n := 0
	for i, nd := range cs.nodes {
		if cs.live[i] {
			n += nd.NumQueries()
		}
	}
	return n
}

// QueryIDs returns all installed query IDs across nodes, ascending.
func (cs *ClusterServer) QueryIDs() []model.QueryID {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	var out []model.QueryID
	for i, nd := range cs.nodes {
		if cs.live[i] {
			out = append(out, nd.QueryIDs()...)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NearbyQueries returns RQI(cell) unioned across nodes, ascending.
func (cs *ClusterServer) NearbyQueries(cell grid.CellID) []model.QueryID {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	var out []model.QueryID
	for i, nd := range cs.nodes {
		if cs.live[i] {
			out = append(out, nd.NearbyQueries(cell)...)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Ops returns the cumulative operation count: router dispatches plus every
// node's table work.
func (cs *ClusterServer) Ops() int64 {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	n := cs.ops.Value()
	for i, nd := range cs.nodes {
		if cs.live[i] {
			n += nd.Ops()
		}
	}
	return n
}

// Migrations returns the cumulative number of protocol-driven cross-node
// focal handoffs (admin rebalancing moves are not counted).
func (cs *ClusterServer) Migrations() int64 { return cs.migrations.Value() }

// OpsByNode returns each node's cumulative operation count, indexed by node.
func (cs *ClusterServer) OpsByNode() []int64 {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	out := make([]int64, len(cs.nodes))
	for i, nd := range cs.nodes {
		if cs.live[i] {
			out[i] = nd.Ops()
		}
	}
	return out
}

// UplinksByNode returns the number of uplink messages dispatched to each
// node, indexed by node.
func (cs *ClusterServer) UplinksByNode() []int64 {
	out := make([]int64, len(cs.nUpl))
	for i, c := range cs.nUpl {
		out[i] = c.Value()
	}
	return out
}

// NodeSpan describes one node's current assignment for introspection and
// the admin `nodes` command. Fault carries the node's sticky transport
// error, when it has one — the explicit marker that this row's counts are
// zeros because the node is unreachable, not because its tables are empty.
type NodeSpan struct {
	Node    int    `json:"node"`
	Lo      int    `json:"lo"`
	Hi      int    `json:"hi"`
	Live    bool   `json:"live"`
	Focals  int    `json:"focals"`
	Queries int    `json:"queries"`
	Fault   string `json:"fault,omitempty"`
}

// Spans returns every node's current cell-range assignment and table sizes.
func (cs *ClusterServer) Spans() []NodeSpan {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	out := make([]NodeSpan, len(cs.nodes))
	for i, nd := range cs.nodes {
		out[i] = NodeSpan{Node: i, Lo: cs.spanLo[i], Hi: cs.spanHi[i], Live: cs.live[i]}
		if cs.live[i] {
			out[i].Focals = len(nd.FocalIDs())
			out[i].Queries = nd.NumQueries()
		}
		if f, ok := nd.(interface{ Err() error }); ok {
			if err := f.Err(); err != nil {
				out[i].Fault = err.Error()
			}
		}
	}
	return out
}

// Instrument attaches the cluster server's metrics to reg: router-level ops
// and uplink counters (node="router"), per-node counters and table-size
// gauges for in-process nodes, the handoff counter, and per-kind uplink
// latency measured at the router.
func (cs *ClusterServer) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.RegisterCounter(metricOps, helpOps, cs.ops, "node", "router")
	reg.RegisterCounter(metricUplinks, helpUplinks, cs.upl, "node", "router")
	reg.RegisterCounter(metricMigrations, helpMigrations, cs.migrations)
	cs.obsm = &serverObs{uplinkLat: newKindLatency(reg, metricUplinkSeconds, helpUplinkSeconds)}
	reg.GaugeFunc(metricPending, helpPending, func() float64 {
		cs.mu.Lock()
		defer cs.mu.Unlock()
		return float64(len(cs.pending))
	})
	reg.GaugeFunc(metricInflight, helpInflight, func() float64 {
		return float64(cs.inflight.Load())
	})
	for i, ns := range cs.local {
		if ns == nil {
			continue
		}
		srv := ns.srv
		label := strconv.Itoa(i)
		reg.RegisterCounter(metricOps, helpOps, srv.ops, "node", label)
		reg.RegisterCounter(metricUplinks, helpUplinks, cs.nUpl[i], "node", label)
		locked := func(fn func(*Server) int) func() float64 {
			return func() float64 {
				cs.mu.Lock()
				defer cs.mu.Unlock()
				return float64(fn(srv))
			}
		}
		reg.GaugeFunc(metricFOTSize, helpFOTSize, locked(func(s *Server) int { return len(s.fot) }), "node", label)
		reg.GaugeFunc(metricSQTSize, helpSQTSize, locked(func(s *Server) int { return len(s.sqt) }), "node", label)
		reg.GaugeFunc(metricRQIEntries, helpRQIEntries, locked(func(s *Server) int { return s.rqiCount }), "node", label)
	}
}

// Snapshot serializes the cluster's durable state in the same MOBS format
// as the serial and sharded servers — snapshots move freely between all
// three implementations and across node counts.
func (cs *ClusterServer) Snapshot(w io.Writer) error {
	cs.mu.Lock()
	d := snapData{nextQID: model.QueryID(cs.qidCounter) + 1}
	for i, nd := range cs.nodes {
		if !cs.live[i] {
			continue
		}
		raw, err := nd.SnapshotData()
		if err != nil {
			cs.mu.Unlock()
			return err
		}
		sd, err := readSnapshot(bytes.NewReader(raw))
		if err != nil {
			cs.mu.Unlock()
			return err
		}
		d.queries = append(d.queries, sd.queries...)
	}
	sort.Slice(d.queries, func(i, j int) bool { return d.queries[i].state.QID < d.queries[j].state.QID })
	var pendingFocals []model.ObjectID
	for focal := range cs.pending {
		pendingFocals = append(pendingFocals, focal)
	}
	sort.Slice(pendingFocals, func(i, j int) bool { return pendingFocals[i] < pendingFocals[j] })
	for _, focal := range pendingFocals {
		for _, p := range cs.pending[focal] {
			d.pending = append(d.pending, snapPending{
				qid:    p.qid,
				query:  p.query,
				maxVel: p.maxVel,
				expiry: cs.pendingExp[p.qid],
			})
		}
	}
	cs.mu.Unlock()
	return writeSnapshot(w, d)
}

// RestoreClusterServer rebuilds an in-process cluster server from a
// snapshot written by any implementation. Each restored query lands on the
// node whose span owns its focal object's current cell; pending
// installations re-issue their FocalInfoRequests through down.
func RestoreClusterServer(g *grid.Grid, opts Options, down Downlink, n int, r io.Reader) (*ClusterServer, error) {
	d, err := readSnapshot(r)
	if err != nil {
		return nil, err
	}
	cs := NewClusterServer(g, opts, down, n)
	cs.qidCounter = int64(d.nextQID) - 1
	for _, q := range d.queries {
		cell := g.CellOf(q.state.State.Pos)
		ni := cs.nodeOf(cell)
		cs.local[ni].srv.restoreQuery(q)
		cs.focalNode[q.state.Focal] = ni
		cs.queryNode[q.state.QID] = ni
	}
	for _, p := range d.pending {
		focal := p.query.Focal
		cs.pending[focal] = append(cs.pending[focal], pendingInstall{
			qid:    p.qid,
			query:  p.query,
			maxVel: p.maxVel,
		})
		if p.expiry != 0 {
			cs.pendingExp[p.qid] = p.expiry
		}
		if len(cs.pending[focal]) == 1 {
			cs.unicast(focal, msg.FocalInfoRequest{OID: focal}, 0)
		}
	}
	return cs, nil
}

// CheckInvariants validates every node's internal consistency plus the
// cluster invariants: routing tables agree with node contents in both
// directions, each focal row lives in the node whose span owns its current
// cell, live spans partition the grid, dead nodes are empty, and pending
// expiries refer to pending queries. Intended for tests and debugging.
func (cs *ClusterServer) CheckInvariants() error {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	for idx := 0; idx < cs.g.NumCells(); idx++ {
		owners := 0
		for i := range cs.nodes {
			if cs.live[i] && idx >= cs.spanLo[i] && idx < cs.spanHi[i] {
				owners++
			}
		}
		if owners != 1 {
			return fmt.Errorf("core: cell index %d owned by %d live nodes", idx, owners)
		}
	}
	for i, nd := range cs.nodes {
		if !cs.live[i] {
			if n := nd.NumQueries(); n != 0 {
				return fmt.Errorf("core: dead node %d still owns %d queries", i, n)
			}
			if ids := nd.FocalIDs(); len(ids) != 0 {
				return fmt.Errorf("core: dead node %d still owns %d focals", i, len(ids))
			}
			continue
		}
		if err := nd.CheckInvariants(); err != nil {
			return fmt.Errorf("node %d: %w", i, err)
		}
		for _, oid := range nd.FocalIDs() {
			cell, _ := nd.FocalCell(oid)
			if want := cs.nodeOf(cell); want != i {
				return fmt.Errorf("core: focal %d on node %d but %v is in node %d's span", oid, i, cell, want)
			}
			if ri, ok := cs.focalNode[oid]; !ok || ri != i {
				return fmt.Errorf("core: focal %d owned by node %d but routed to %d", oid, i, ri)
			}
		}
		for _, qid := range nd.QueryIDs() {
			if ri, ok := cs.queryNode[qid]; !ok || ri != i {
				return fmt.Errorf("core: query %d owned by node %d but routed to %d", qid, i, ri)
			}
		}
	}
	for oid, ni := range cs.focalNode {
		if _, ok := cs.nodes[ni].FocalCell(oid); !ok {
			return fmt.Errorf("core: focal %d routed to node %d which does not own it", oid, ni)
		}
	}
	for qid, ni := range cs.queryNode {
		if _, ok := cs.nodes[ni].Query(qid); !ok {
			return fmt.Errorf("core: query %d routed to node %d which does not own it", qid, ni)
		}
	}
	for qid := range cs.pendingExp {
		found := false
		for _, ps := range cs.pending {
			for _, p := range ps {
				if p.qid == qid {
					found = true
				}
			}
		}
		if !found {
			return fmt.Errorf("core: pending expiry recorded for non-pending query %d", qid)
		}
	}
	return nil
}

// Close closes every node handle (a no-op for in-process nodes; the TCP
// tier tears down worker connections).
func (cs *ClusterServer) Close() error {
	var first error
	for _, nd := range cs.nodes {
		if err := nd.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
