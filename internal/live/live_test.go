package live

import (
	"testing"
	"time"

	"mobieyes/internal/geo"
	"mobieyes/internal/model"
)

// fastConfig compresses time hard so tests finish in tens of milliseconds:
// one wall millisecond ticks, 600 simulated seconds per wall second.
func fastConfig() Config {
	return Config{
		UoD:          geo.NewRect(0, 0, 100, 100),
		Alpha:        5,
		TickInterval: time.Millisecond,
		TimeScale:    600,
	}
}

var acceptAll = model.Filter{Seed: 1, Permille: 1000}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool) bool {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return cond()
}

func TestLiveBasicContainment(t *testing.T) {
	s := NewSystem(fastConfig())
	defer s.Close()

	s.AddObject(1, geo.Pt(50, 50), geo.Vec(0, 0), 100, model.Props{Key: 1})
	s.AddObject(2, geo.Pt(51, 50), geo.Vec(0, 0), 100, model.Props{Key: 2})
	s.AddObject(3, geo.Pt(90, 90), geo.Vec(0, 0), 100, model.Props{Key: 3})

	qid := s.InstallQuery(1, model.CircleRegion{R: 3}, acceptAll, 100)
	ok := waitFor(t, 2*time.Second, func() bool {
		r := s.Result(qid)
		return len(r) == 2 && r[0] == 1 && r[1] == 2
	})
	if !ok {
		t.Fatalf("result never converged to [1 2]: %v", s.Result(qid))
	}
}

func TestLiveObjectMovesIntoRegion(t *testing.T) {
	s := NewSystem(fastConfig())
	defer s.Close()

	s.AddObject(1, geo.Pt(50, 50), geo.Vec(0, 0), 300, model.Props{Key: 1})
	// Object 2 starts 10 miles east, outside r=3, driving west at 300 mph.
	// At TimeScale 600, it covers 300 mph × 600 = 50 simulated miles per
	// wall second — it enters the region within ~0.2 wall seconds.
	s.AddObject(2, geo.Pt(60, 50), geo.Vec(-300, 0), 300, model.Props{Key: 2})
	qid := s.InstallQuery(1, model.CircleRegion{R: 3}, acceptAll, 300)

	entered := waitFor(t, 3*time.Second, func() bool {
		for _, oid := range s.Result(qid) {
			if oid == 2 {
				return true
			}
		}
		return false
	})
	if !entered {
		t.Fatal("object 2 never entered the result while driving through")
	}
	// It keeps going and must eventually leave again.
	left := waitFor(t, 3*time.Second, func() bool {
		for _, oid := range s.Result(qid) {
			if oid == 2 {
				return false
			}
		}
		return true
	})
	if !left {
		t.Fatal("object 2 never left the result after passing through")
	}
}

func TestLiveSetVelocity(t *testing.T) {
	s := NewSystem(fastConfig())
	defer s.Close()

	s.AddObject(1, geo.Pt(20, 50), geo.Vec(0, 0), 300, model.Props{Key: 1})
	p0, ok := s.Position(1)
	if !ok {
		t.Fatal("Position failed")
	}
	s.SetVelocity(1, geo.Vec(300, 0))
	moved := waitFor(t, 2*time.Second, func() bool {
		p, _ := s.Position(1)
		return p.X > p0.X+1
	})
	if !moved {
		t.Fatal("object did not move after SetVelocity")
	}
	if _, ok := s.Position(99); ok {
		t.Error("unknown object has a position")
	}
}

func TestLiveQueryFollowsFocal(t *testing.T) {
	s := NewSystem(fastConfig())
	defer s.Close()

	// Focal drives east; a parked object sits in its path.
	s.AddObject(1, geo.Pt(30, 50), geo.Vec(250, 0), 300, model.Props{Key: 1})
	s.AddObject(2, geo.Pt(45, 50), geo.Vec(0, 0), 300, model.Props{Key: 2})
	qid := s.InstallQuery(1, model.CircleRegion{R: 2}, acceptAll, 300)

	hit := waitFor(t, 4*time.Second, func() bool {
		for _, oid := range s.Result(qid) {
			if oid == 2 {
				return true
			}
		}
		return false
	})
	if !hit {
		t.Fatal("moving query never swept over the parked object")
	}
}

func TestLiveRemoveQuery(t *testing.T) {
	s := NewSystem(fastConfig())
	defer s.Close()
	s.AddObject(1, geo.Pt(50, 50), geo.Vec(0, 0), 100, model.Props{Key: 1})
	qid := s.InstallQuery(1, model.CircleRegion{R: 3}, acceptAll, 100)
	if !waitFor(t, 2*time.Second, func() bool { return len(s.Result(qid)) == 1 }) {
		t.Fatal("result never converged")
	}
	s.RemoveQuery(qid)
	if len(s.Result(qid)) != 0 {
		t.Fatal("result survives removal")
	}
}

func TestLiveDuplicateAddIgnored(t *testing.T) {
	s := NewSystem(fastConfig())
	defer s.Close()
	s.AddObject(1, geo.Pt(10, 10), geo.Vec(0, 0), 100, model.Props{})
	s.AddObject(1, geo.Pt(90, 90), geo.Vec(0, 0), 100, model.Props{})
	p, ok := s.Position(1)
	if !ok || p.Dist(geo.Pt(10, 10)) > 1 {
		t.Fatalf("duplicate AddObject replaced the original: %v", p)
	}
}

func TestLiveCloseIsIdempotentlySafe(t *testing.T) {
	s := NewSystem(fastConfig())
	s.AddObject(1, geo.Pt(10, 10), geo.Vec(50, 50), 100, model.Props{})
	s.InstallQuery(1, model.CircleRegion{R: 3}, acceptAll, 100)
	time.Sleep(10 * time.Millisecond)
	s.Close()
	// Requests after Close return promptly with zero values.
	if r := s.Result(1); r != nil {
		t.Errorf("Result after Close = %v", r)
	}
	if _, ok := s.Position(1); ok {
		t.Error("Position after Close succeeded")
	}
}

func TestLiveManyObjectsUnderRace(t *testing.T) {
	// Primarily a data-race canary (run with -race); 50 objects moving and
	// a handful of queries.
	s := NewSystem(fastConfig())
	defer s.Close()
	for i := 1; i <= 50; i++ {
		x := float64((i*7)%90 + 5)
		y := float64((i*13)%90 + 5)
		s.AddObject(model.ObjectID(i), geo.Pt(x, y), geo.Vec(float64(i%5)*20-40, 30), 250, model.Props{Key: uint64(i)})
	}
	var qids []model.QueryID
	for i := 1; i <= 5; i++ {
		qids = append(qids, s.InstallQuery(model.ObjectID(i), model.CircleRegion{R: 5}, acceptAll, 250))
	}
	time.Sleep(100 * time.Millisecond)
	for _, qid := range qids {
		_ = s.Result(qid)
	}
	for i := 1; i <= 50; i++ {
		s.SetVelocity(model.ObjectID(i), geo.Vec(10, -10))
	}
	time.Sleep(50 * time.Millisecond)
	total := 0
	for _, qid := range qids {
		total += len(s.Result(qid))
	}
	if total == 0 {
		t.Error("no query ever matched anything — system seems inert")
	}
}

func TestLiveWatchQuery(t *testing.T) {
	s := NewSystem(fastConfig())
	defer s.Close()

	s.AddObject(1, geo.Pt(50, 50), geo.Vec(0, 0), 300, model.Props{Key: 1})
	// Object 2 drives through the region: one enter and one leave event.
	s.AddObject(2, geo.Pt(60, 50), geo.Vec(-300, 0), 300, model.Props{Key: 2})
	qid := s.InstallQuery(1, model.CircleRegion{R: 3}, acceptAll, 300)
	events := s.WatchQuery(qid)

	var enters, leaves int
	deadline := time.After(5 * time.Second)
	for enters == 0 || leaves == 0 {
		select {
		case ev := <-events:
			if ev.QID != qid {
				t.Fatalf("event for wrong query: %+v", ev)
			}
			if ev.OID == 2 {
				if ev.Entered {
					enters++
				} else {
					leaves++
				}
			}
		case <-deadline:
			t.Fatalf("missing events: %d enters, %d leaves of object 2", enters, leaves)
		}
	}
}

func TestLiveWatchChannelClosesOnShutdown(t *testing.T) {
	s := NewSystem(fastConfig())
	s.AddObject(1, geo.Pt(50, 50), geo.Vec(0, 0), 100, model.Props{Key: 1})
	qid := s.InstallQuery(1, model.CircleRegion{R: 3}, acceptAll, 100)
	events := s.WatchQuery(qid)
	s.Close()
	select {
	case _, ok := <-events:
		for ok {
			_, ok = <-events
		}
	case <-time.After(time.Second):
		t.Fatal("watch channel not closed after shutdown")
	}
}

func TestLiveRemoveQueryEmitsLeaves(t *testing.T) {
	s := NewSystem(fastConfig())
	defer s.Close()
	s.AddObject(1, geo.Pt(50, 50), geo.Vec(0, 0), 100, model.Props{Key: 1})
	qid := s.InstallQuery(1, model.CircleRegion{R: 3}, acceptAll, 100)
	events := s.WatchQuery(qid)
	// Wait until the focal itself enters the result.
	deadline := time.After(3 * time.Second)
	for {
		select {
		case ev := <-events:
			if ev.Entered && ev.OID == 1 {
				goto installed
			}
		case <-deadline:
			t.Fatal("focal never entered its own query result")
		}
	}
installed:
	s.RemoveQuery(qid)
	select {
	case ev := <-events:
		if ev.Entered || ev.OID != 1 {
			t.Fatalf("expected leave of object 1, got %+v", ev)
		}
	case <-time.After(time.Second):
		t.Fatal("no leave event after RemoveQuery")
	}
}

// TestLiveLateJoinerLearnsStandingQueries: an object added after a query is
// installed must still become a target — the Join handshake hands it the
// standing queries of its starting cell.
func TestLiveLateJoinerLearnsStandingQueries(t *testing.T) {
	s := NewSystem(fastConfig())
	defer s.Close()
	s.AddObject(1, geo.Pt(50, 50), geo.Vec(0, 0), 100, model.Props{Key: 1})
	qid := s.InstallQuery(1, model.CircleRegion{R: 3}, acceptAll, 100)
	if !waitFor(t, 2*time.Second, func() bool { return len(s.Result(qid)) == 1 }) {
		t.Fatal("initial result never converged")
	}
	// Parachute a new object right next to the focal, well inside the
	// region and inside the monitoring region.
	s.AddObject(2, geo.Pt(51, 50), geo.Vec(0, 0), 100, model.Props{Key: 2})
	if !waitFor(t, 3*time.Second, func() bool { return len(s.Result(qid)) == 2 }) {
		t.Fatalf("late joiner never entered the result: %v", s.Result(qid))
	}
}

// TestLiveRemoveObjectCleansResults: a departing object leaves every query
// result; a departing focal object takes its queries with it.
func TestLiveRemoveObjectCleansResults(t *testing.T) {
	s := NewSystem(fastConfig())
	defer s.Close()
	s.AddObject(1, geo.Pt(50, 50), geo.Vec(0, 0), 100, model.Props{Key: 1})
	s.AddObject(2, geo.Pt(51, 50), geo.Vec(0, 0), 100, model.Props{Key: 2})
	qid := s.InstallQuery(1, model.CircleRegion{R: 3}, acceptAll, 100)
	if !waitFor(t, 2*time.Second, func() bool { return len(s.Result(qid)) == 2 }) {
		t.Fatal("result never converged")
	}
	// Non-focal departure.
	s.RemoveObject(2)
	if !waitFor(t, 2*time.Second, func() bool {
		r := s.Result(qid)
		return len(r) == 1 && r[0] == 1
	}) {
		t.Fatalf("departed object still in result: %v", s.Result(qid))
	}
	if _, ok := s.Position(2); ok {
		t.Error("removed object still has a position")
	}
	// Focal departure tears the query down.
	s.RemoveObject(1)
	if !waitFor(t, 2*time.Second, func() bool { return len(s.Result(qid)) == 0 }) {
		t.Fatalf("focal departure left the query alive: %v", s.Result(qid))
	}
	// Removing an unknown object is a no-op.
	s.RemoveObject(99)
}

func TestLiveQueryExpires(t *testing.T) {
	s := NewSystem(fastConfig())
	defer s.Close()
	s.AddObject(1, geo.Pt(50, 50), geo.Vec(0, 0), 100, model.Props{Key: 1})
	// 60 simulated seconds ≈ 100 wall ms at TimeScale 600.
	qid := s.InstallQueryFor(1, model.CircleRegion{R: 3}, acceptAll, 100, 60)
	if !waitFor(t, 2*time.Second, func() bool { return len(s.Result(qid)) == 1 }) {
		t.Fatal("result never converged before expiry")
	}
	if !waitFor(t, 2*time.Second, func() bool { return len(s.Result(qid)) == 0 }) {
		t.Fatal("duration-bound query never expired")
	}
}

func TestLiveStats(t *testing.T) {
	s := NewSystem(fastConfig())
	defer s.Close()
	s.AddObject(1, geo.Pt(50, 50), geo.Vec(100, 0), 300, model.Props{Key: 1})
	s.AddObject(2, geo.Pt(51, 50), geo.Vec(0, 0), 300, model.Props{Key: 2})
	qid := s.InstallQuery(1, model.CircleRegion{R: 3}, acceptAll, 300)
	if !waitFor(t, 2*time.Second, func() bool { return len(s.Result(qid)) >= 1 }) {
		t.Fatal("no results")
	}
	up, down, upB, downB, byKind := s.Stats()
	if up == 0 || down == 0 {
		t.Errorf("stats: %d up, %d down", up, down)
	}
	if upB == 0 || downB == 0 {
		t.Errorf("byte stats: %d up, %d down", upB, downB)
	}
	if len(byKind) == 0 {
		t.Error("no per-kind stats")
	}
	var total int64
	for _, ks := range byKind {
		total += ks.UplinkMsgs + ks.DownlinkMsgs
	}
	if total != up+down {
		t.Errorf("per-kind sum %d != totals %d", total, up+down)
	}
}
