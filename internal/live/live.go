// Package live runs MobiEyes as a concurrent system: one goroutine per
// moving object and one for the server, exchanging the protocol messages of
// internal/msg over channels. It wraps the same deterministic state
// machines as the simulation (core.Server, core.Client) in a real-time
// harness, which is the natural Go rendering of the paper's mobile system —
// moving objects are independent computing devices, the server is a
// mediator, and everything communicates asynchronously.
//
// Time runs on the wall clock, scaled by Config.TimeScale (simulated
// seconds per wall second), so a demo can compress hours of movement into
// seconds. Each object advances its own position continuously from its
// velocity vector; there is no global step.
package live

import (
	"sync"
	"time"

	"mobieyes/internal/core"
	"mobieyes/internal/geo"
	"mobieyes/internal/grid"
	"mobieyes/internal/model"
	"mobieyes/internal/msg"
	"mobieyes/internal/network"
)

// Config configures a live system.
type Config struct {
	// UoD is the universe of discourse; Alpha the grid cell side (miles).
	UoD   geo.Rect
	Alpha float64
	// TickInterval is the wall-clock period of each object's local clock
	// (cell-change detection, dead reckoning, query evaluation).
	TickInterval time.Duration
	// TimeScale is simulated seconds per wall second (e.g. 3600 makes one
	// wall second one simulated hour). Zero defaults to 1.
	TimeScale float64
	// Options selects the protocol variant.
	Options core.Options
}

// System is a running live MobiEyes deployment.
type System struct {
	cfg Config
	g   *grid.Grid

	start time.Time

	mu     sync.RWMutex
	agents map[model.ObjectID]*agent

	uplink   chan msg.Message
	requests chan func(*core.Server)
	done     chan struct{}
	wg       sync.WaitGroup

	watchMu  sync.Mutex
	watchers map[model.QueryID][]*watcher

	meterMu sync.Mutex
	meter   network.Meter
}

// NewSystem starts the server goroutine and returns an empty system.
func NewSystem(cfg Config) *System {
	if cfg.TimeScale == 0 {
		cfg.TimeScale = 1
	}
	if cfg.TickInterval == 0 {
		cfg.TickInterval = 100 * time.Millisecond
	}
	s := &System{
		cfg:      cfg,
		g:        grid.New(cfg.UoD, cfg.Alpha),
		start:    time.Now(),
		agents:   make(map[model.ObjectID]*agent),
		uplink:   make(chan msg.Message, 1024),
		requests: make(chan func(*core.Server), 64),
		done:     make(chan struct{}),
	}
	s.watchers = make(map[model.QueryID][]*watcher)
	srv := core.NewServer(s.g, cfg.Options, systemDownlink{s})
	srv.SetResultListener(s.dispatchResultEvent)
	s.wg.Add(1)
	go s.serverLoop(srv)
	return s
}

// watcher forwards result events for one query to a subscriber channel via
// an unbounded mailbox, so the server goroutine never blocks on slow
// consumers.
type watcher struct {
	qid  model.QueryID
	mail *mailbox
	out  chan core.ResultEvent
}

// WatchQuery returns a channel delivering every differential change to the
// query's result set, in order. The channel closes when the system shuts
// down. Result changes propagate at object-tick granularity, so subscribing
// right after InstallQuery returns observes the query's first results.
func (s *System) WatchQuery(qid model.QueryID) <-chan core.ResultEvent {
	w := &watcher{qid: qid, mail: newMailbox(), out: make(chan core.ResultEvent)}
	s.watchMu.Lock()
	s.watchers[qid] = append(s.watchers[qid], w)
	s.watchMu.Unlock()
	s.wg.Add(1)
	go w.pump(s)
	return w.out
}

func (w *watcher) pump(s *System) {
	defer s.wg.Done()
	defer close(w.out)
	for {
		select {
		case <-s.done:
			return
		case <-w.mail.signal:
			for _, m := range w.mail.drain() {
				ev := m.(resultEventMsg).ev
				select {
				case w.out <- ev:
				case <-s.done:
					return
				}
			}
		}
	}
}

// resultEventMsg adapts ResultEvent to the mailbox's msg.Message element
// type.
type resultEventMsg struct{ ev core.ResultEvent }

func (resultEventMsg) Kind() msg.Kind { return msg.Kind(-1) }
func (resultEventMsg) Size() int      { return 0 }

// dispatchResultEvent runs on the server goroutine.
func (s *System) dispatchResultEvent(ev core.ResultEvent) {
	s.watchMu.Lock()
	ws := s.watchers[ev.QID]
	s.watchMu.Unlock()
	for _, w := range ws {
		w.mail.put(resultEventMsg{ev})
	}
}

// now returns the current simulated time.
func (s *System) now() model.Time {
	return model.FromSeconds(time.Since(s.start).Seconds() * s.cfg.TimeScale)
}

func (s *System) serverLoop(srv *core.Server) {
	defer s.wg.Done()
	expiry := time.NewTicker(s.cfg.TickInterval)
	defer expiry.Stop()
	for {
		select {
		case <-s.done:
			return
		case m := <-s.uplink:
			srv.HandleUplink(m)
		case req := <-s.requests:
			req(srv)
		case <-expiry.C:
			srv.ExpireQueries(s.now())
		}
	}
}

// request runs fn on the server goroutine and waits for it to finish.
func (s *System) request(fn func(*core.Server)) {
	doneCh := make(chan struct{})
	select {
	case s.requests <- func(srv *core.Server) {
		fn(srv)
		close(doneCh)
	}:
	case <-s.done:
		return
	}
	select {
	case <-doneCh:
	case <-s.done:
	}
}

// Stats returns a snapshot of the wireless-traffic counters: message and
// byte totals per direction plus the per-kind breakdown.
func (s *System) Stats() (uplinkMsgs, downlinkMsgs, uplinkBytes, downlinkBytes int64, byKind []network.KindStats) {
	s.meterMu.Lock()
	defer s.meterMu.Unlock()
	return s.meter.UplinkMessages(), s.meter.DownlinkMessages(),
		s.meter.UplinkBytes(), s.meter.DownlinkBytes(), s.meter.Snapshot()
}

func (s *System) recordUplink(m msg.Message) {
	s.meterMu.Lock()
	s.meter.RecordUplink(m)
	s.meterMu.Unlock()
}

func (s *System) recordDownlink(m msg.Message, copies int) {
	s.meterMu.Lock()
	s.meter.RecordDownlink(m, copies)
	s.meterMu.Unlock()
}

// systemDownlink delivers server messages to agents. Broadcasts go to every
// agent (the clients self-filter by monitoring region, exactly as under a
// base station whose coverage exceeds the region); unicasts go to one.
// Deliveries never block the server: each agent has an unbounded mailbox.
type systemDownlink struct{ s *System }

func (d systemDownlink) Broadcast(region grid.CellRange, m msg.Message) {
	d.s.recordDownlink(m, 1)
	d.s.mu.RLock()
	defer d.s.mu.RUnlock()
	for _, a := range d.s.agents {
		a.mail.put(m)
	}
}

func (d systemDownlink) Unicast(oid model.ObjectID, m msg.Message) {
	d.s.recordDownlink(m, 1)
	d.s.mu.RLock()
	a := d.s.agents[oid]
	d.s.mu.RUnlock()
	if a != nil {
		a.mail.put(m)
	}
}

// AddObject spawns a moving object with the given initial state and starts
// its goroutine. Adding an existing ID replaces nothing and is ignored.
func (s *System) AddObject(oid model.ObjectID, pos geo.Point, vel geo.Vector, maxVel float64, props model.Props) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.agents[oid]; ok {
		return
	}
	a := &agent{
		sys:    s,
		oid:    oid,
		pos:    pos,
		vel:    vel,
		lastT:  s.now(),
		mail:   newMailbox(),
		ctrl:   make(chan func(*agent), 16),
		stop:   make(chan struct{}),
		client: core.NewClient(s.g, s.cfg.Options, agentUplink{s}, oid, props, maxVel, pos),
	}
	s.agents[oid] = a
	s.wg.Add(1)
	go a.loop()
}

// RemoveObject departs an object from the system: it announces its
// departure (leaving every query result it was in, tearing down queries it
// was focal of) and its goroutine stops. Removing an unknown object is a
// no-op.
func (s *System) RemoveObject(oid model.ObjectID) {
	s.mu.Lock()
	a := s.agents[oid]
	delete(s.agents, oid)
	s.mu.Unlock()
	if a == nil {
		return
	}
	s.withAgentDirect(a, func(a *agent) {
		a.client.Depart()
	})
	close(a.stop)
}

// InstallQuery installs a moving query on the running system and returns
// its identifier. Installation completes asynchronously (the server may
// need to fetch the focal object's motion state first).
func (s *System) InstallQuery(focal model.ObjectID, region model.Region, filter model.Filter, focalMaxVel float64) model.QueryID {
	var qid model.QueryID
	s.request(func(srv *core.Server) {
		qid = srv.InstallQuery(focal, region, filter, focalMaxVel)
	})
	return qid
}

// InstallQueryFor installs a query that uninstalls itself after the given
// simulated duration (in simulated seconds).
func (s *System) InstallQueryFor(focal model.ObjectID, region model.Region, filter model.Filter, focalMaxVel float64, durationSimSeconds float64) model.QueryID {
	var qid model.QueryID
	expiry := s.now() + model.FromSeconds(durationSimSeconds)
	s.request(func(srv *core.Server) {
		qid = srv.InstallQueryUntil(focal, region, filter, focalMaxVel, expiry)
	})
	return qid
}

// RemoveQuery uninstalls a query.
func (s *System) RemoveQuery(qid model.QueryID) {
	s.request(func(srv *core.Server) { srv.RemoveQuery(qid) })
}

// Result returns the server's current result set for a query.
func (s *System) Result(qid model.QueryID) []model.ObjectID {
	var out []model.ObjectID
	s.request(func(srv *core.Server) { out = srv.Result(qid) })
	return out
}

// SetVelocity changes an object's velocity vector, as if the device turned.
func (s *System) SetVelocity(oid model.ObjectID, vel geo.Vector) {
	s.withAgent(oid, func(a *agent) {
		a.advance()
		a.vel = vel
	})
}

// Position returns an object's current position.
func (s *System) Position(oid model.ObjectID) (geo.Point, bool) {
	var p geo.Point
	ok := s.withAgent(oid, func(a *agent) {
		a.advance()
		p = a.pos
	})
	return p, ok
}

// withAgent runs fn on the agent's goroutine and waits.
func (s *System) withAgent(oid model.ObjectID, fn func(*agent)) bool {
	s.mu.RLock()
	a := s.agents[oid]
	s.mu.RUnlock()
	if a == nil {
		return false
	}
	return s.withAgentDirect(a, fn)
}

func (s *System) withAgentDirect(a *agent, fn func(*agent)) bool {
	doneCh := make(chan struct{})
	select {
	case a.ctrl <- func(a *agent) {
		fn(a)
		close(doneCh)
	}:
	case <-a.stop:
		return false
	case <-s.done:
		return false
	}
	select {
	case <-doneCh:
		return true
	case <-a.stop:
		return false
	case <-s.done:
		return false
	}
}

// Close stops every goroutine and waits for them to exit.
func (s *System) Close() {
	close(s.done)
	s.wg.Wait()
}

// agentUplink forwards client messages to the server goroutine.
type agentUplink struct{ s *System }

func (u agentUplink) Send(m msg.Message) {
	u.s.recordUplink(m)
	select {
	case u.s.uplink <- m:
	case <-u.s.done:
	}
}

// agent is one moving object: position integrator plus protocol client.
type agent struct {
	sys    *System
	oid    model.ObjectID
	pos    geo.Point
	vel    geo.Vector
	lastT  model.Time
	mail   *mailbox
	ctrl   chan func(*agent)
	stop   chan struct{}
	client *core.Client
}

// advance integrates the position up to the current simulated time.
func (a *agent) advance() {
	now := a.sys.now()
	a.pos = a.pos.Add(a.vel, float64(now-a.lastT))
	a.lastT = now
}

func (a *agent) loop() {
	defer a.sys.wg.Done()
	// Announce arrival: pick up the standing queries of our starting cell.
	a.advance()
	a.client.Join(a.pos, a.vel, a.lastT)
	ticker := time.NewTicker(a.sys.cfg.TickInterval)
	defer ticker.Stop()
	for {
		select {
		case <-a.sys.done:
			return
		case <-a.stop:
			return
		case <-a.mail.signal:
			for _, m := range a.mail.drain() {
				a.advance()
				a.client.OnDownlink(m, a.pos, a.vel, a.lastT)
			}
		case fn := <-a.ctrl:
			fn(a)
		case <-ticker.C:
			a.advance()
			a.client.TickCellChange(a.pos, a.vel, a.lastT)
			a.client.TickDeadReckoning(a.pos, a.vel, a.lastT)
			a.client.TickEvaluate(a.pos, a.vel, a.lastT)
		}
	}
}

// mailbox is an unbounded, signal-driven message queue: producers never
// block, which breaks the server↔agent delivery cycle that bounded
// channels would deadlock on.
type mailbox struct {
	mu     sync.Mutex
	queue  []msg.Message
	signal chan struct{}
}

func newMailbox() *mailbox {
	return &mailbox{signal: make(chan struct{}, 1)}
}

func (mb *mailbox) put(m msg.Message) {
	mb.mu.Lock()
	mb.queue = append(mb.queue, m)
	mb.mu.Unlock()
	select {
	case mb.signal <- struct{}{}:
	default:
	}
}

func (mb *mailbox) drain() []msg.Message {
	mb.mu.Lock()
	q := mb.queue
	mb.queue = nil
	mb.mu.Unlock()
	return q
}
