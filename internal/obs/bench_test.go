package obs

import (
	"testing"
	"time"
)

// The acceptance numbers for this package: an enabled counter increment plus
// an enabled histogram observation — the full per-operation instrumentation
// cost on the server hot path — must stay in the low tens of nanoseconds,
// and the disabled (nil) path must be near-free. Results are recorded in
// EXPERIMENTS.md.

func BenchmarkCounterAdd(b *testing.B) {
	c := NewCounter()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(3e-6)
	}
}

// BenchmarkCounterPlusHistogram is the per-op cost of full enabled
// instrumentation: one count and one latency observation.
func BenchmarkCounterPlusHistogram(b *testing.B) {
	c := NewCounter()
	h := NewHistogram(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
		h.Observe(3e-6)
	}
}

// BenchmarkCounterPlusHistogramTimed adds the two time.Now() calls an
// instrumented latency measurement actually performs.
func BenchmarkCounterPlusHistogramTimed(b *testing.B) {
	c := NewCounter()
	h := NewHistogram(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		c.Add(1)
		h.Observe(time.Since(start).Seconds())
	}
}

// BenchmarkNilInstrumentation is the disabled path: nil metrics from a nil
// registry.
func BenchmarkNilInstrumentation(b *testing.B) {
	var r *Registry
	c := r.Counter("x_total", "")
	h := r.Histogram("x_seconds", "", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
		h.Observe(3e-6)
	}
}

func BenchmarkCounterParallel(b *testing.B) {
	c := NewCounter()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Add(1)
		}
	})
}

func BenchmarkHistogramObserveParallel(b *testing.B) {
	h := NewHistogram(nil)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(3e-6)
		}
	})
}
