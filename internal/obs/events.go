package obs

import (
	"encoding/json"
	"net/http"
	"strconv"

	"mobieyes/internal/obs/trace"
)

// AttachEvents mounts the flight-recorder endpoint on mux:
//
//	/debug/events    the recorder's event journal, newest-biased
//
// Query parameters (all optional, combinable):
//
//	trace=N      only events of causal chain N
//	oid=N        only events about object N
//	qid=N        only events about query N
//	actor=S      only events recorded by actor S (e.g. "router", "shard3")
//	n=N          at most the newest N matches (default 100; n=0 means all)
//	causal=1     replace the oid/qid filters with the full causal closure:
//	             every chain that ever touched the object or query
//	format=json  JSON array instead of the human-readable text dump
//
// When rec is nil (tracing disabled) the endpoint answers 404 so probes can
// distinguish "no recorder" from "no events".
func AttachEvents(mux *http.ServeMux, rec *trace.Recorder) {
	mux.HandleFunc("/debug/events", func(w http.ResponseWriter, req *http.Request) {
		if rec == nil {
			http.Error(w, "tracing disabled", http.StatusNotFound)
			return
		}
		q := req.URL.Query()
		intParam := func(key string) (int64, bool) {
			v := q.Get(key)
			if v == "" {
				return 0, true
			}
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil || n < 0 {
				http.Error(w, "bad "+key+" parameter", http.StatusBadRequest)
				return 0, false
			}
			return n, true
		}
		tid, ok := intParam("trace")
		if !ok {
			return
		}
		oid, ok := intParam("oid")
		if !ok {
			return
		}
		qid, ok := intParam("qid")
		if !ok {
			return
		}
		limit := int64(100)
		if q.Get("n") != "" {
			if limit, ok = intParam("n"); !ok {
				return
			}
		}

		var evs []trace.Event
		if q.Get("causal") == "1" && (oid != 0 || qid != 0) {
			evs = rec.Causal(oid, qid)
		} else {
			evs = rec.Events(trace.Filter{
				Trace: trace.ID(tid),
				OID:   oid,
				QID:   qid,
				Actor: q.Get("actor"),
				Limit: int(limit),
			})
		}

		if q.Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(evs)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		trace.Format(w, evs)
	})
}
