package obs

import (
	"math"
	"testing"
)

// Regression tests for Quantile's edge behavior (PR 4 satellite): the
// estimator must stay finite and sensible at the boundaries where naive
// bucket interpolation goes wrong.

// TestQuantileEmpty: an empty histogram estimates 0 for every q, including
// the boundaries.
func TestQuantileEmpty(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, q := range []float64{0, 0.5, 1, -1, 2, math.NaN()} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty.Quantile(%v) = %v, want 0", q, got)
		}
	}
	var nilH *Histogram
	if got := nilH.Quantile(0.5); got != 0 {
		t.Errorf("nil.Quantile(0.5) = %v, want 0", got)
	}
}

// TestQuantileSingleObservation: with one observation every quantile lands
// inside that observation's bucket — never outside it, never NaN.
func TestQuantileSingleObservation(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	h.Observe(1.5) // bucket (1, 2]
	for _, q := range []float64{0, 0.25, 0.5, 1} {
		got := h.Quantile(q)
		if got < 1 || got > 2 {
			t.Errorf("Quantile(%v) = %v, want within (1, 2]", q, got)
		}
	}
	// q=0 pins the bucket's lower bound, q=1 its upper bound.
	if got := h.Quantile(0); got != 1 {
		t.Errorf("Quantile(0) = %v, want 1", got)
	}
	if got := h.Quantile(1); got != 2 {
		t.Errorf("Quantile(1) = %v, want 2", got)
	}
}

// TestQuantileAllOverflow: observations above every finite bound clamp to
// the highest finite bound, as Prometheus's histogram_quantile does.
func TestQuantileAllOverflow(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for i := 0; i < 10; i++ {
		h.Observe(100)
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 4 {
			t.Errorf("Quantile(%v) = %v, want 4 (highest finite bound)", q, got)
		}
	}
}

// TestQuantileNaN: a NaN q must not poison the estimate — it clamps like an
// out-of-range q instead of failing every comparison in the scan.
func TestQuantileNaN(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	h.Observe(0.5)
	h.Observe(1.5)
	got := h.Quantile(math.NaN())
	if math.IsNaN(got) {
		t.Fatal("Quantile(NaN) returned NaN")
	}
	if want := h.Quantile(0); got != want {
		t.Errorf("Quantile(NaN) = %v, want Quantile(0) = %v", got, want)
	}
}

// TestQuantileOutOfRange: q below 0 and above 1 clamp to the boundary
// estimates.
func TestQuantileOutOfRange(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	h.Observe(0.5)
	h.Observe(3)
	if got, want := h.Quantile(-0.5), h.Quantile(0); got != want {
		t.Errorf("Quantile(-0.5) = %v, want %v", got, want)
	}
	if got, want := h.Quantile(1.5), h.Quantile(1); got != want {
		t.Errorf("Quantile(1.5) = %v, want %v", got, want)
	}
}

// TestQuantileSkipsEmptyLeadingBuckets: q=0 reports the lower bound of the
// first non-empty bucket, not of the first bucket overall.
func TestQuantileSkipsEmptyLeadingBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8})
	h.Observe(3) // bucket (2, 4]
	if got := h.Quantile(0); got != 2 {
		t.Errorf("Quantile(0) = %v, want 2 (lower bound of first non-empty bucket)", got)
	}
}

// PR 9 satellite: the HDR log-bucketed latency preset and the exact-max
// tracking that back the load generator's SLO quantiles.

// TestLogBuckets pins the generator's shape: log-spaced, deduplicated,
// strictly increasing, covering [lo, hi].
func TestLogBuckets(t *testing.T) {
	b := LogBuckets(1e-6, 1, 3)
	if b[0] != 1e-6 {
		t.Fatalf("first bound = %v, want 1e-6", b[0])
	}
	if last := b[len(b)-1]; last < 1 {
		t.Fatalf("last bound = %v, want ≥ 1", last)
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not strictly increasing at %d: %v ≤ %v", i, b[i], b[i-1])
		}
	}
	// 3 per decade over 6 decades ≈ 19 bounds: resolution stays bounded.
	if len(b) < 18 || len(b) > 20 {
		t.Fatalf("len = %d, want ≈ 19", len(b))
	}
}

// TestLogBucketsPanicsOnBadArgs: misuse is a programming error, caught loudly.
func TestLogBucketsPanicsOnBadArgs(t *testing.T) {
	for _, c := range []struct {
		lo, hi float64
		per    int
	}{
		{0, 1, 3}, {-1, 1, 3}, {1, 1, 3}, {2, 1, 3}, {1e-6, 1, 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("LogBuckets(%v, %v, %d) did not panic", c.lo, c.hi, c.per)
				}
			}()
			LogBuckets(c.lo, c.hi, c.per)
		}()
	}
}

// TestHDRLatencyBucketsResolveWideRange is the PR 9 regression the preset
// exists for: the fixed LatencyBuckets ladder saturates at 1s, so any
// multi-second coordinated-omission-corrected tail collapses to "1s". The
// HDR preset must resolve nanosecond floors AND multi-second tails with
// bounded relative error.
func TestHDRLatencyBucketsResolveWideRange(t *testing.T) {
	// The old ladder cannot tell 2s from 8s.
	old := NewHistogram(LatencyBuckets)
	old.Observe(2)
	old.Observe(8)
	if q := old.Quantile(0.99); q > 1 {
		t.Fatalf("LatencyBuckets q99 = %v — expected saturation at 1s (update this test if the ladder grew)", q)
	}

	for _, v := range []float64{50e-9, 800e-9, 3e-6, 250e-6, 1.7e-3, 0.4, 2.5, 8} {
		h := NewHistogram(HDRLatencyBuckets)
		for i := 0; i < 1000; i++ {
			h.Observe(v)
		}
		for _, q := range []float64{0.5, 0.99, 0.999} {
			got := h.Quantile(q)
			if rel := math.Abs(got-v) / v; rel > 0.35 {
				t.Errorf("HDR Quantile(%v) of %v = %v (rel err %.2f), want within bucket resolution", q, v, got, rel)
			}
		}
	}
}

// TestHistogramMaxExact: Max is the exact largest observation, not a bucket
// bound — and 0 until something positive is observed.
func TestHistogramMaxExact(t *testing.T) {
	h := NewHistogram(HDRLatencyBuckets)
	if h.Max() != 0 {
		t.Fatalf("empty Max = %v", h.Max())
	}
	h.Observe(0.00137)
	h.Observe(4.2)
	h.Observe(0.9)
	if got := h.Max(); got != 4.2 {
		t.Fatalf("Max = %v, want 4.2 exactly", got)
	}
	var nilH *Histogram
	if nilH.Max() != 0 {
		t.Fatal("nil Max != 0")
	}
	if got := h.Mean(); math.Abs(got-(0.00137+4.2+0.9)/3) > 1e-12 {
		t.Fatalf("Mean = %v", got)
	}
}
