package obs

import (
	"math"
	"testing"
)

// Regression tests for Quantile's edge behavior (PR 4 satellite): the
// estimator must stay finite and sensible at the boundaries where naive
// bucket interpolation goes wrong.

// TestQuantileEmpty: an empty histogram estimates 0 for every q, including
// the boundaries.
func TestQuantileEmpty(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, q := range []float64{0, 0.5, 1, -1, 2, math.NaN()} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty.Quantile(%v) = %v, want 0", q, got)
		}
	}
	var nilH *Histogram
	if got := nilH.Quantile(0.5); got != 0 {
		t.Errorf("nil.Quantile(0.5) = %v, want 0", got)
	}
}

// TestQuantileSingleObservation: with one observation every quantile lands
// inside that observation's bucket — never outside it, never NaN.
func TestQuantileSingleObservation(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	h.Observe(1.5) // bucket (1, 2]
	for _, q := range []float64{0, 0.25, 0.5, 1} {
		got := h.Quantile(q)
		if got < 1 || got > 2 {
			t.Errorf("Quantile(%v) = %v, want within (1, 2]", q, got)
		}
	}
	// q=0 pins the bucket's lower bound, q=1 its upper bound.
	if got := h.Quantile(0); got != 1 {
		t.Errorf("Quantile(0) = %v, want 1", got)
	}
	if got := h.Quantile(1); got != 2 {
		t.Errorf("Quantile(1) = %v, want 2", got)
	}
}

// TestQuantileAllOverflow: observations above every finite bound clamp to
// the highest finite bound, as Prometheus's histogram_quantile does.
func TestQuantileAllOverflow(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for i := 0; i < 10; i++ {
		h.Observe(100)
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 4 {
			t.Errorf("Quantile(%v) = %v, want 4 (highest finite bound)", q, got)
		}
	}
}

// TestQuantileNaN: a NaN q must not poison the estimate — it clamps like an
// out-of-range q instead of failing every comparison in the scan.
func TestQuantileNaN(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	h.Observe(0.5)
	h.Observe(1.5)
	got := h.Quantile(math.NaN())
	if math.IsNaN(got) {
		t.Fatal("Quantile(NaN) returned NaN")
	}
	if want := h.Quantile(0); got != want {
		t.Errorf("Quantile(NaN) = %v, want Quantile(0) = %v", got, want)
	}
}

// TestQuantileOutOfRange: q below 0 and above 1 clamp to the boundary
// estimates.
func TestQuantileOutOfRange(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	h.Observe(0.5)
	h.Observe(3)
	if got, want := h.Quantile(-0.5), h.Quantile(0); got != want {
		t.Errorf("Quantile(-0.5) = %v, want %v", got, want)
	}
	if got, want := h.Quantile(1.5), h.Quantile(1); got != want {
		t.Errorf("Quantile(1.5) = %v, want %v", got, want)
	}
}

// TestQuantileSkipsEmptyLeadingBuckets: q=0 reports the lower bound of the
// first non-empty bucket, not of the first bucket overall.
func TestQuantileSkipsEmptyLeadingBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8})
	h.Observe(3) // bucket (2, 4]
	if got := h.Quantile(0); got != 2 {
		t.Errorf("Quantile(0) = %v, want 2 (lower bound of first non-empty bucket)", got)
	}
}
