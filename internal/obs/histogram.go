package obs

import (
	"math"
	"sync/atomic"
)

// LatencyBuckets are the default histogram bounds for durations in seconds:
// 100 ns to 1 s, roughly logarithmic. Server-side per-operation latencies in
// this system sit in the sub-microsecond to millisecond range, so the low
// end is deliberately fine-grained.
var LatencyBuckets = []float64{
	100e-9, 250e-9, 500e-9,
	1e-6, 2.5e-6, 5e-6,
	10e-6, 25e-6, 50e-6,
	100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3,
	10e-3, 25e-3, 50e-3,
	100e-3, 250e-3, 500e-3, 1,
}

// SizeBuckets are the default bounds for dimensionless sizes (batch sizes,
// fan-out counts, cell counts): powers of two up to 64 Ki.
var SizeBuckets = []float64{
	1, 2, 4, 8, 16, 32, 64, 128, 256, 512,
	1024, 2048, 4096, 8192, 16384, 32768, 65536,
}

// LogBuckets generates strictly ascending log-spaced bucket bounds from lo to
// at least hi, with perDecade bounds per factor of ten. Bounds are computed in
// log space (not by repeated multiplication) so long ladders don't accumulate
// rounding drift.
func LogBuckets(lo, hi float64, perDecade int) []float64 {
	if lo <= 0 || hi <= lo || perDecade <= 0 {
		panic("obs: LogBuckets needs 0 < lo < hi and perDecade > 0")
	}
	steps := int(math.Ceil(math.Log10(hi/lo) * float64(perDecade)))
	out := make([]float64, 0, steps+1)
	logLo := math.Log10(lo)
	for i := 0; ; i++ {
		b := math.Pow(10, logLo+float64(i)/float64(perDecade))
		if len(out) > 0 && b <= out[len(out)-1] {
			continue
		}
		out = append(out, b)
		if b >= hi {
			return out
		}
	}
}

// HDRLatencyBuckets is the high-dynamic-range latency preset for open-loop
// load measurement, in seconds: 20 ns to 10 s, nine log-spaced bounds per
// decade (~29% resolution). Unlike LatencyBuckets it does not saturate at 1 s,
// so coordinated-omission-corrected tail latencies — where one multi-second
// stall charges thousands of queued ops with seconds of wait — stay resolved
// instead of clamping to the top bound.
var HDRLatencyBuckets = LogBuckets(20e-9, 10, 9)

// A Histogram counts observations into fixed buckets (cumulative on export,
// per-bucket internally) and tracks their total count and sum, permitting
// Prometheus-style quantile estimation. All methods are safe for concurrent
// use; a nil *Histogram is a no-op.
type Histogram struct {
	// bounds are the inclusive upper bounds of the finite buckets,
	// ascending. counts has len(bounds)+1 entries; the last is the
	// overflow (+Inf) bucket.
	bounds []float64
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
	max    atomic.Uint64 // float64 bits, CAS-maximized; 0 until first observation
}

// NewHistogram returns a standalone histogram with the given ascending
// bucket upper bounds (LatencyBuckets when bounds is empty).
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = LatencyBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	b := append([]float64(nil), bounds...)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one observation. No-op on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Linear scan: bucket counts are small (~20) and real observations
	// concentrate in the low buckets, so this beats a binary search on
	// average and keeps the hot path branch-predictable.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.max.Load()
		if v <= math.Float64frombits(old) || h.max.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := h.sum.Load()
		niu := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, niu) {
			return
		}
	}
}

// Count returns the total number of observations (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Max returns the largest value observed so far — exact, not a bucket bound,
// which matters for the tail above the quantile resolution. Returns 0 for a
// nil or empty histogram (and for histograms that only saw values ≤ 0).
func (h *Histogram) Max() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.max.Load())
}

// Mean returns the arithmetic mean of all observations (0 when empty or nil).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// snapshot copies the per-bucket counts. The copy is not atomic across
// buckets — like any live scrape, it may straddle concurrent observations —
// but each bucket value is itself consistent.
func (h *Histogram) snapshot() []int64 {
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the bucket counts by
// linear interpolation inside the containing bucket, exactly like
// Prometheus's histogram_quantile. Observations in the overflow bucket clamp
// to the highest finite bound. Returns 0 when the histogram is empty or nil.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	counts := h.snapshot()
	var total int64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	if math.IsNaN(q) || q < 0 {
		// NaN fails every comparison, so without this guard it would slip
		// past both clamps and poison rank (and the returned estimate).
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum int64
	for i, c := range counts {
		if float64(cum)+float64(c) < rank || c == 0 {
			cum += c
			continue
		}
		if i == len(h.bounds) {
			// Overflow bucket: the true value is above every finite
			// bound; clamp, as histogram_quantile does.
			return h.bounds[len(h.bounds)-1]
		}
		lower := 0.0
		if i > 0 {
			lower = h.bounds[i-1]
		}
		frac := (rank - float64(cum)) / float64(c)
		return lower + (h.bounds[i]-lower)*frac
	}
	return h.bounds[len(h.bounds)-1]
}
