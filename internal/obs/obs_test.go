package obs

import (
	"math"
	"strconv"
	"sync"
	"testing"
)

// TestNilSafety: every operation on a nil registry and nil metrics is a
// no-op — the contract that lets instrumentation run unconditionally on the
// deterministic serial path.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "")
	c.Add(5)
	c.Inc()
	if c.Value() != 0 {
		t.Errorf("nil counter Value = %d", c.Value())
	}
	g := r.Gauge("x", "")
	g.Set(1)
	g.Add(2)
	if g.Value() != 0 {
		t.Errorf("nil gauge Value = %v", g.Value())
	}
	h := r.Histogram("x_seconds", "", nil)
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Error("nil histogram not a no-op")
	}
	r.RegisterCounter("y_total", "", NewCounter())
	r.GaugeFunc("y", "", func() float64 { return 1 })
	if err := r.WritePrometheus(discard{}); err != nil {
		t.Errorf("nil WritePrometheus: %v", err)
	}
	if len(r.Snapshot()) != 0 {
		t.Error("nil Snapshot not empty")
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// TestGetOrCreate: constructors are idempotent per name+labels, label order
// does not matter, and type conflicts panic.
func TestGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("ops_total", "ops", "shard", "0")
	b := r.Counter("ops_total", "ops", "shard", "0")
	if a != b {
		t.Error("same name+labels returned distinct counters")
	}
	if c := r.Counter("ops_total", "ops", "shard", "1"); c == a {
		t.Error("distinct labels shared a counter")
	}
	x := r.Gauge("g", "", "a", "1", "b", "2")
	y := r.Gauge("g", "", "b", "2", "a", "1")
	if x != y {
		t.Error("label order changed series identity")
	}
	defer func() {
		if recover() == nil {
			t.Error("type conflict did not panic")
		}
	}()
	r.Gauge("ops_total", "")
}

// TestRegisterCounterReplaces: attaching an existing counter exposes its
// live value, and re-attaching (a rebuilt component) replaces the series.
func TestRegisterCounterReplaces(t *testing.T) {
	r := NewRegistry()
	c1 := NewCounter()
	c1.Add(7)
	r.RegisterCounter("ops_total", "", c1)
	if v := r.Snapshot()["ops_total"]; v != int64(7) {
		t.Fatalf("registered counter snapshot = %v", v)
	}
	c2 := NewCounter()
	c2.Add(40)
	r.RegisterCounter("ops_total", "", c2)
	if v := r.Snapshot()["ops_total"]; v != int64(40) {
		t.Fatalf("replaced counter snapshot = %v", v)
	}
}

// TestConcurrentMutation hammers one registry from many goroutines — run
// under -race this is the data-race check for the whole package.
func TestConcurrentMutation(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			shard := string(rune('0' + w%4))
			for i := 0; i < perWorker; i++ {
				r.Counter("ops_total", "ops", "shard", shard).Inc()
				r.Gauge("load", "").Add(1)
				r.Histogram("lat_seconds", "", nil).Observe(float64(i%100) * 1e-6)
				if i%100 == 0 {
					var sink [64]byte
					b := writerTo{buf: sink[:0]}
					r.WritePrometheus(&b) // concurrent scrape
					r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	var total int64
	for _, sh := range []string{"0", "1", "2", "3"} {
		total += r.Counter("ops_total", "", "shard", sh).Value()
	}
	if total != workers*perWorker {
		t.Errorf("counter total = %d, want %d", total, workers*perWorker)
	}
	if g := r.Gauge("load", "").Value(); g != workers*perWorker {
		t.Errorf("gauge = %v, want %d", g, workers*perWorker)
	}
	if h := r.Histogram("lat_seconds", "", nil); h.Count() != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*perWorker)
	}
}

// TestScrapeDuringRegistration scrapes while another goroutine keeps
// creating brand-new series in the same families — the case where the scrape
// walks a family's series map as a registration inserts into it. Under -race
// this pins that snapshotting holds the registry lock.
func TestScrapeDuringRegistration(t *testing.T) {
	r := NewRegistry()
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			sh := strconv.Itoa(i)
			r.Counter("churn_total", "", "shard", sh).Inc()
			r.Gauge("churn_load", "", "shard", sh).Set(float64(i))
			r.Histogram("churn_seconds", "", nil, "shard", sh).Observe(1e-6)
			r.RegisterCounter("churn_attached_total", "", NewCounter(), "shard", sh)
			r.GaugeFunc("churn_fn", "", func() float64 { return float64(i) }, "shard", sh)
		}
	}()
	for i := 0; i < 300; i++ {
		if err := r.WritePrometheus(discard{}); err != nil {
			t.Fatalf("scrape %d: %v", i, err)
		}
		r.Snapshot()
	}
	close(done)
	wg.Wait()
}

// TestFirstUseConcurrent races many goroutines on the FIRST constructor call
// for one series: all must receive the same instance (creation happens under
// the registry lock), so no increment is lost to an orphaned duplicate.
func TestFirstUseConcurrent(t *testing.T) {
	r := NewRegistry()
	const n = 32
	counters := make([]*Counter, n)
	hists := make([]*Histogram, n)
	gate := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-gate
			counters[i] = r.Counter("first_total", "")
			counters[i].Inc()
			hists[i] = r.Histogram("first_seconds", "", nil)
			hists[i].Observe(1)
		}(i)
	}
	close(gate)
	wg.Wait()
	for i := 1; i < n; i++ {
		if counters[i] != counters[0] {
			t.Fatal("concurrent first use created distinct counters")
		}
		if hists[i] != hists[0] {
			t.Fatal("concurrent first use created distinct histograms")
		}
	}
	if v := r.Counter("first_total", "").Value(); v != n {
		t.Errorf("counter = %d, want %d (increments lost to an orphan)", v, n)
	}
	if c := r.Histogram("first_seconds", "", nil).Count(); c != n {
		t.Errorf("histogram count = %d, want %d", c, n)
	}
}

type writerTo struct{ buf []byte }

func (w *writerTo) Write(p []byte) (int, error) { w.buf = append(w.buf[:0], p...); return len(p), nil }

// TestHistogramBuckets: observations land in the right buckets (le
// semantics: a value equal to a bound belongs to that bound's bucket).
func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 5.0, 100} {
		h.Observe(v)
	}
	got := h.snapshot()
	want := []int64{2, 2, 2, 2} // ≤1: {0.5,1}, ≤2: {1.5,2}, ≤4: {3,4}, +Inf: {5,100}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d = %d, want %d (all: %v)", i, got[i], want[i], got)
		}
	}
	if h.Count() != 8 {
		t.Errorf("count = %d", h.Count())
	}
	if math.Abs(h.Sum()-117.0) > 1e-9 {
		t.Errorf("sum = %v", h.Sum())
	}
}

// TestHistogramQuantileUniform: against a uniform distribution on (0, 1000]
// with 10 equal buckets, interpolated quantiles are exact at every point.
func TestHistogramQuantileUniform(t *testing.T) {
	bounds := make([]float64, 10)
	for i := range bounds {
		bounds[i] = float64((i + 1) * 100)
	}
	h := NewHistogram(bounds)
	for v := 1; v <= 1000; v++ {
		h.Observe(float64(v))
	}
	for _, tc := range []struct{ q, want float64 }{
		{0.10, 100}, {0.50, 500}, {0.90, 900}, {0.99, 990}, {1.0, 1000},
	} {
		if got := h.Quantile(tc.q); math.Abs(got-tc.want) > 1.0 {
			t.Errorf("q=%v: got %v, want %v ±1", tc.q, got, tc.want)
		}
	}
}

// TestHistogramQuantileSkewed: a point mass in one bucket interpolates
// within that bucket only, and overflow observations clamp to the top bound.
func TestHistogramQuantileSkewed(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for i := 0; i < 90; i++ {
		h.Observe(5) // bucket (1,10]
	}
	for i := 0; i < 10; i++ {
		h.Observe(1000) // overflow
	}
	if q := h.Quantile(0.5); q < 1 || q > 10 {
		t.Errorf("p50 = %v, want within (1,10]", q)
	}
	if q := h.Quantile(0.99); q != 100 {
		t.Errorf("p99 = %v, want clamp to 100", q)
	}
	empty := NewHistogram(nil)
	if q := empty.Quantile(0.5); q != 0 {
		t.Errorf("empty quantile = %v", q)
	}
}

// TestGaugeFunc: scrape-time computation wins over the stored gauge value.
func TestGaugeFunc(t *testing.T) {
	r := NewRegistry()
	n := 3.0
	r.GaugeFunc("table_size", "", func() float64 { return n })
	if v := r.Snapshot()["table_size"]; v != 3.0 {
		t.Fatalf("gauge func snapshot = %v", v)
	}
	n = 8
	if v := r.Snapshot()["table_size"]; v != 8.0 {
		t.Fatalf("gauge func not recomputed: %v", v)
	}
}
