package load

import (
	"bufio"
	"fmt"
	"net"
	"sync/atomic"

	"mobieyes/internal/core"
	"mobieyes/internal/model"
	"mobieyes/internal/msg"
	"mobieyes/internal/obs"
	"mobieyes/internal/obs/trace"
	"mobieyes/internal/remote"
	"mobieyes/internal/wire"
)

// tcpTarget drives a real internal/remote server over loopback TCP: one
// connection per worker, each op pipelined as an uplink frame immediately
// followed by a Ping frame. The server's read loop dispatches uplinks
// synchronously before echoing the Pong, so the Pong is a completion signal
// covering the full server-side processing of the op (frame decode, backend
// dispatch, and the enqueue of every downlink the op caused on this
// connection).
type tcpTarget struct {
	srv       *remote.Server
	rec       *trace.Recorder
	conns     []*loadConn
	delivered atomic.Int64
}

// loadConn is one worker's connection. A connection is owned by a single
// goroutine at a time (setup runs before the workers start; each worker then
// has its own), so writes never interleave.
type loadConn struct {
	conn  net.Conn
	token uint64
	pong  chan struct{}
	dead  chan struct{}
}

func newTCPTarget(cfg Config, w *Workload, rec *trace.Recorder, reg *obs.Registry) (Target, error) {
	srv, err := remote.ListenAndServe(remote.ServerConfig{
		Addr:    "127.0.0.1:0",
		UoD:     w.UoD,
		Alpha:   workloadAlpha,
		Shards:  cfg.Shards,
		Metrics: reg,
		Trace:   rec,
	})
	if err != nil {
		return nil, err
	}
	t := &tcpTarget{srv: srv, rec: rec}
	for i := 0; i < cfg.Workers; i++ {
		// Hello as object i+1: those are real workload objects, so unicasts
		// addressed to them actually deliver over the wire.
		c, err := t.dial(srv.Addr().String(), model.ObjectID(i+1))
		if err != nil {
			t.Close()
			return nil, err
		}
		t.conns = append(t.conns, c)
	}
	return t, nil
}

func (t *tcpTarget) dial(addr string, oid model.ObjectID) (*loadConn, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	if err := remote.WriteFrame(conn, remote.EncodeHello(oid)); err != nil {
		conn.Close()
		return nil, err
	}
	c := &loadConn{conn: conn, pong: make(chan struct{}, 1), dead: make(chan struct{})}
	go t.readLoop(c)
	return c, nil
}

// readLoop drains one connection's downlink stream: Pongs complete pending
// ops; every other frame is a delivered protocol message, counted and — when
// it carries a trace ID — recorded as the trace's delivery event.
func (t *tcpTarget) readLoop(c *loadConn) {
	defer close(c.dead)
	br := bufio.NewReader(c.conn)
	for {
		payload, err := remote.ReadFrame(br)
		if err != nil {
			return
		}
		m, tid, err := wire.DecodeTraced(payload)
		if err != nil {
			return
		}
		if _, isPong := m.(msg.Pong); isPong {
			select {
			case c.pong <- struct{}{}:
			default:
			}
			continue
		}
		t.delivered.Add(1)
		if t.rec != nil && tid != 0 {
			oid, qid := core.TraceRef(m)
			t.rec.Event(trace.ID(tid), trace.KindDeliver, "device", oid, qid, m.Kind().String())
		}
	}
}

// do writes one uplink frame (trace ID minted client-side when tracing)
// followed by a Ping, then blocks until the Pong comes back.
func (c *loadConn) do(t *tcpTarget, m msg.Message) error {
	var tid uint64
	if t.rec != nil {
		tid = uint64(t.rec.NextID())
	}
	if err := remote.WriteFrame(c.conn, wire.EncodeTraced(m, tid)); err != nil {
		return err
	}
	return c.ping()
}

func (t *tcpTarget) Name() string        { return "tcp" }
func (t *tcpTarget) API() core.ServerAPI { return nil }

func (t *tcpTarget) Install(focal model.ObjectID, radius, maxVel float64) model.QueryID {
	return t.srv.InstallQuery(focal, model.CircleRegion{R: radius}, model.Filter{}, maxVel)
}

func (t *tcpTarget) Do(worker int, m msg.Message) error {
	return t.conns[worker%len(t.conns)].do(t, m)
}

// ping writes a single Ping frame and waits for its Pong. Exactly one ping
// is ever outstanding per connection (do and ping both wait before
// returning), so pings and pongs stay matched one-to-one.
func (c *loadConn) ping() error {
	c.token++
	if err := remote.WriteFrame(c.conn, wire.Encode(msg.Ping{Token: c.token})); err != nil {
		return err
	}
	select {
	case <-c.pong:
		return nil
	case <-c.dead:
		return fmt.Errorf("load: connection lost waiting for pong")
	}
}

// Quiesce runs a ping round on every connection: when each Pong is back, all
// uplinks written before it have been dispatched.
func (t *tcpTarget) Quiesce() error {
	for _, c := range t.conns {
		if err := c.ping(); err != nil {
			return err
		}
	}
	return nil
}

func (t *tcpTarget) Depth() int64     { return 0 }
func (t *tcpTarget) Delivered() int64 { return t.delivered.Load() }

func (t *tcpTarget) Close() error {
	for _, c := range t.conns {
		c.conn.Close()
	}
	t.srv.Close()
	return nil
}
