package load

import (
	"encoding/json"
	"fmt"
	"io"

	"mobieyes/internal/obs"
)

// IntervalSample is one sampler tick of a run's time series. Latency fields
// are the quantiles of ops *completed during this interval* (seconds,
// measured from scheduled arrival — coordinated-omission safe); Backlog is
// how many scheduled ops had not completed at sample time, i.e. the
// open-loop queue the backend has fallen behind by.
type IntervalSample struct {
	T          float64 `json:"t"`          // seconds since run start
	Issued     int64   `json:"issued"`     // ops issued so far (cumulative)
	Done       int64   `json:"done"`       // ops completed so far (cumulative)
	Throughput float64 `json:"throughput"` // ops/sec completed this interval
	Backlog    int64   `json:"backlog"`    // scheduled-but-incomplete ops
	Depth      int64   `json:"depth"`      // backend internal queue depth
	Count      int64   `json:"count"`      // measured ops this interval
	P50        float64 `json:"p50"`
	P90        float64 `json:"p90"`
	P99        float64 `json:"p99"`
	P999       float64 `json:"p999"`
	Max        float64 `json:"max"`
	GCPauseNs  uint64  `json:"gc_pause_ns"` // GC pause time this interval
	Goroutines int     `json:"goroutines"`
}

// Summary are the cumulative post-warmup end-to-end latency statistics of a
// run (seconds from scheduled arrival to completion).
type Summary struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	P999  float64 `json:"p999"`
	Max   float64 `json:"max"`
}

func summarize(h *obs.Histogram) Summary {
	return Summary{
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.5),
		P90:   h.Quantile(0.9),
		P99:   h.Quantile(0.99),
		P999:  h.Quantile(0.999),
		Max:   h.Max(),
	}
}

// Report is the full result of one load run against one backend.
type Report struct {
	Backend  string  `json:"backend"`
	Rate     float64 `json:"rate"` // target arrival rate, ops/sec
	Objects  int     `json:"objects"`
	Queries  int     `json:"queries"`
	Workers  int     `json:"workers"`
	Shards   int     `json:"shards,omitempty"`
	Nodes    int     `json:"nodes,omitempty"`
	Seed     uint64  `json:"seed"`
	Duration float64 `json:"duration"` // measured window, seconds
	Warmup   float64 `json:"warmup"`   // discarded warmup, seconds

	// Sustained is the measured completion rate over the post-warmup
	// window; Delivered counts downlink messages the backend emitted.
	Sustained float64 `json:"sustained_throughput"`
	Delivered int64   `json:"delivered"`

	Summary   Summary          `json:"summary"`
	Intervals []IntervalSample `json:"intervals"`

	// Stages is the per-stage pipeline decomposition from the causal
	// tracer (nil when the run was untraced).
	Stages *obs.LatencySnap `json:"stages,omitempty"`
}

// File is the on-disk shape of results/loadreport.json: one run per backend.
type File struct {
	Runs []*Report `json:"runs"`
}

// WriteJSON writes the report file with stable indentation.
func (f *File) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// WriteText prints a human-readable run summary: the headline sustained
// throughput and SLO latencies, then the per-stage decomposition if traced.
func (r *Report) WriteText(w io.Writer) {
	fmt.Fprintf(w, "backend=%s rate=%.0f/s objects=%d queries=%d workers=%d\n",
		r.Backend, r.Rate, r.Objects, r.Queries, r.Workers)
	fmt.Fprintf(w, "  sustained %.0f ops/sec  delivered %d downlinks\n",
		r.Sustained, r.Delivered)
	s := r.Summary
	fmt.Fprintf(w, "  e2e (from schedule): p50 %s  p90 %s  p99 %s  p99.9 %s  max %s  (n=%d)\n",
		fmtSec(s.P50), fmtSec(s.P90), fmtSec(s.P99), fmtSec(s.P999), fmtSec(s.Max), s.Count)
	if r.Stages != nil {
		fmt.Fprintf(w, "  pipeline stages (traces=%d partial=%d orphans=%d):\n",
			r.Stages.Traces, r.Stages.Partial, r.Stages.Orphans)
		for _, st := range r.Stages.Stages {
			fmt.Fprintf(w, "    %-8s p50 %s  p99 %s  max %s\n",
				st.Stage, fmtSec(st.P50), fmtSec(st.P99), fmtSec(st.Max))
		}
		fmt.Fprintf(w, "    %-8s p50 %s  p99 %s  max %s\n",
			"e2e", fmtSec(r.Stages.E2E.P50), fmtSec(r.Stages.E2E.P99), fmtSec(r.Stages.E2E.Max))
	}
}

// fmtSec renders a duration in seconds at a human scale.
func fmtSec(s float64) string {
	switch {
	case s <= 0:
		return "0"
	case s < 1e-6:
		return fmt.Sprintf("%.0fns", s*1e9)
	case s < 1e-3:
		return fmt.Sprintf("%.1fµs", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.2fms", s*1e3)
	default:
		return fmt.Sprintf("%.2fs", s)
	}
}
