package load

import (
	"fmt"
	"sync"
	"sync/atomic"

	"mobieyes/internal/core"
	"mobieyes/internal/grid"
	"mobieyes/internal/model"
	"mobieyes/internal/msg"
	"mobieyes/internal/obs"
	"mobieyes/internal/obs/trace"
)

// Target abstracts the backend under load. The in-process targets wrap a
// core.ServerAPI directly; the tcp target drives a real internal/remote
// server over loopback connections.
type Target interface {
	// Name identifies the backend in reports ("serial", "sharded", ...).
	Name() string
	// API exposes the underlying server for query installation and
	// invariant checks; nil when the backend is only reachable over the
	// wire (the tcp target installs through the remote server instead).
	API() core.ServerAPI
	// Install installs a range query on the given focal object.
	Install(focal model.ObjectID, radius, maxVel float64) model.QueryID
	// Do issues one uplink and returns when the backend has fully
	// processed it (for in-process targets the dispatch call itself; for
	// tcp, a pipelined Ping echo that the server only answers after the
	// preceding frame was dispatched).
	Do(worker int, m msg.Message) error
	// Quiesce blocks until all in-flight work has drained.
	Quiesce() error
	// Depth samples the backend's instantaneous internal queue depth
	// (pending sharded uplinks, cluster in-flight ops); 0 where the
	// backend has no internal queues.
	Depth() int64
	// Delivered counts downlink messages the backend emitted so far.
	Delivered() int64
	// Close releases the target's resources.
	Close() error
}

// sink is the downlink endpoint of the in-process targets: it counts
// deliveries and — when a delivery belongs to a trace — records the
// KindDeliver event that terminates the pipeline-stage decomposition.
type sink struct {
	rec       *trace.Recorder
	delivered atomic.Int64
}

func (s *sink) record(m msg.Message, tid trace.ID) {
	s.delivered.Add(1)
	if s.rec != nil && tid != 0 {
		oid, qid := core.TraceRef(m)
		s.rec.Event(tid, trace.KindDeliver, "loadgen", oid, qid, m.Kind().String())
	}
}

func (s *sink) Broadcast(region grid.CellRange, m msg.Message) { s.record(m, 0) }
func (s *sink) Unicast(oid model.ObjectID, m msg.Message)      { s.record(m, 0) }
func (s *sink) BroadcastTraced(region grid.CellRange, m msg.Message, tid trace.ID) {
	s.record(m, tid)
}
func (s *sink) UnicastTraced(oid model.ObjectID, m msg.Message, tid trace.ID) {
	s.record(m, tid)
}

var _ core.TracedDownlink = (*sink)(nil)

// serialTarget wraps the single-threaded core.Server behind a mutex. The
// serialization point is exactly what the open-loop harness should see:
// time spent queued on the lock is charged to the op's scheduled arrival.
type serialTarget struct {
	mu   sync.Mutex
	srv  *core.Server
	sink *sink
}

func (t *serialTarget) Name() string        { return "serial" }
func (t *serialTarget) API() core.ServerAPI { return t.srv }
func (t *serialTarget) Install(focal model.ObjectID, radius, maxVel float64) model.QueryID {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.srv.InstallQuery(focal, model.CircleRegion{R: radius}, model.Filter{}, maxVel)
}
func (t *serialTarget) Do(worker int, m msg.Message) error {
	t.mu.Lock()
	t.srv.HandleUplinkTraced(m, 0)
	t.mu.Unlock()
	return nil
}
func (t *serialTarget) Quiesce() error   { return nil }
func (t *serialTarget) Depth() int64     { return 0 }
func (t *serialTarget) Delivered() int64 { return t.sink.delivered.Load() }
func (t *serialTarget) Close() error     { return nil }

// apiTarget wraps a concurrency-safe backend (sharded or cluster).
type apiTarget struct {
	name  string
	srv   core.ServerAPI
	sink  *sink
	depth func() int64
}

func (t *apiTarget) Name() string        { return t.name }
func (t *apiTarget) API() core.ServerAPI { return t.srv }
func (t *apiTarget) Install(focal model.ObjectID, radius, maxVel float64) model.QueryID {
	return t.srv.InstallQuery(focal, model.CircleRegion{R: radius}, model.Filter{}, maxVel)
}
func (t *apiTarget) Do(worker int, m msg.Message) error {
	t.srv.HandleUplinkTraced(m, 0)
	return nil
}
func (t *apiTarget) Quiesce() error   { return nil }
func (t *apiTarget) Depth() int64     { return t.depth() }
func (t *apiTarget) Delivered() int64 { return t.sink.delivered.Load() }
func (t *apiTarget) Close() error     { return nil }

// newTarget builds the backend named by cfg.Backend. rec (nil = untraced)
// is attached as the backend's flight recorder; reg receives the backend's
// metrics (including the queue-depth gauges).
func newTarget(cfg Config, w *Workload, rec *trace.Recorder, reg *obs.Registry) (Target, error) {
	opts := core.Options{}
	switch cfg.Backend {
	case "serial", "":
		sk := &sink{rec: rec}
		srv := core.NewServer(w.G, opts, sk)
		srv.SetTracer(rec)
		srv.Instrument(reg)
		return &serialTarget{srv: srv, sink: sk}, nil
	case "sharded":
		sk := &sink{rec: rec}
		srv := core.NewShardedServer(w.G, opts, sk, cfg.Shards)
		srv.SetTracer(rec)
		srv.Instrument(reg)
		return &apiTarget{
			name: "sharded", srv: srv, sink: sk,
			depth: func() int64 {
				var sum int64
				for _, d := range srv.PendingUplinksByShard() {
					sum += d
				}
				return sum
			},
		}, nil
	case "cluster":
		sk := &sink{rec: rec}
		srv := core.NewClusterServer(w.G, opts, sk, cfg.Nodes)
		srv.SetTracer(rec)
		srv.Instrument(reg)
		return &apiTarget{
			name: "cluster", srv: srv, sink: sk,
			depth: srv.InflightOps,
		}, nil
	case "tcp":
		return newTCPTarget(cfg, w, rec, reg)
	default:
		return nil, fmt.Errorf("load: unknown backend %q (serial|sharded|cluster|tcp)", cfg.Backend)
	}
}
