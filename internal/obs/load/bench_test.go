package load

import (
	"testing"
	"time"
)

// benchSustained runs one open-loop load run at a rate far above what the
// backend can sustain, so the measured completion rate is the backend's
// saturation throughput. Reported as ops/sec (run with -benchtime=1x; each
// iteration is a full run).
func benchSustained(b *testing.B, backend string, objects int) {
	for i := 0; i < b.N; i++ {
		rep, err := Run(Config{
			Backend:  backend,
			Rate:     2e6,
			Duration: 500 * time.Millisecond,
			Warmup:   100 * time.Millisecond,
			Objects:  objects,
			Queries:  objects / 100,
			Seed:     7,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rep.Sustained, "ops/sec")
		b.ReportMetric(rep.Summary.P99*1e9, "p99-ns")
	}
}

func BenchmarkSustainedSerial10k(b *testing.B)   { benchSustained(b, "serial", 10_000) }
func BenchmarkSustainedSerial100k(b *testing.B)  { benchSustained(b, "serial", 100_000) }
func BenchmarkSustainedSharded10k(b *testing.B)  { benchSustained(b, "sharded", 10_000) }
func BenchmarkSustainedSharded100k(b *testing.B) { benchSustained(b, "sharded", 100_000) }
