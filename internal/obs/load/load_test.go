package load

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"

	"mobieyes/internal/obs"
)

// shortCfg is a run small enough for -race CI but long enough to produce
// several intervals and a few thousand ops.
func shortCfg(backend string) Config {
	return Config{
		Backend:  backend,
		Rate:     2000,
		Duration: 400 * time.Millisecond,
		Warmup:   100 * time.Millisecond,
		Interval: 100 * time.Millisecond,
		Objects:  200,
		Queries:  10,
		Workers:  4,
		Seed:     7,
	}
}

// TestRunSmokeAllBackends drives every backend with a short open-loop run
// and checks the report is well-formed: nonzero completed throughput,
// monotone quantiles, a time series, and a clean JSON round trip.
func TestRunSmokeAllBackends(t *testing.T) {
	for _, backend := range []string{"serial", "sharded", "cluster", "tcp"} {
		backend := backend
		t.Run(backend, func(t *testing.T) {
			t.Parallel()
			rep, err := Run(shortCfg(backend))
			if err != nil {
				t.Fatal(err)
			}
			if rep.Backend != backend {
				t.Fatalf("backend = %q, want %q", rep.Backend, backend)
			}
			if rep.Sustained <= 0 {
				t.Fatalf("sustained throughput = %v, want > 0", rep.Sustained)
			}
			if rep.Summary.Count == 0 {
				t.Fatal("no measured ops")
			}
			if len(rep.Intervals) == 0 {
				t.Fatal("no interval samples")
			}
			s := rep.Summary
			if !(s.P50 <= s.P90 && s.P90 <= s.P99 && s.P99 <= s.P999) {
				t.Fatalf("non-monotone quantiles: %+v", s)
			}
			if s.Max < s.P50 {
				t.Fatalf("max %v below p50 %v", s.Max, s.P50)
			}
			if rep.Delivered == 0 {
				t.Fatal("backend delivered no downlinks")
			}
			var buf bytes.Buffer
			if err := (&File{Runs: []*Report{rep}}).WriteJSON(&buf); err != nil {
				t.Fatal(err)
			}
			var f File
			if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
				t.Fatalf("report does not round-trip: %v", err)
			}
			if len(f.Runs) != 1 || f.Runs[0].Summary.Count != rep.Summary.Count {
				t.Fatal("report JSON round trip lost data")
			}
		})
	}
}

// TestRunOpenLoopIsScheduleBound checks the open-loop property: the number
// of issued ops is bound by the arrival schedule (rate × wall time), not by
// backend speed — a fast backend must not issue more than scheduled.
func TestRunOpenLoopIsSchedule(t *testing.T) {
	cfg := shortCfg("serial")
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := cfg.Rate * (cfg.Warmup + cfg.Duration).Seconds()
	last := rep.Intervals[len(rep.Intervals)-1]
	// Workers over-claim at most one schedule slot each at shutdown.
	if float64(last.Issued) > want+float64(cfg.Workers)+1 {
		t.Fatalf("issued %d ops, schedule allows ~%.0f", last.Issued, want)
	}
	if float64(last.Done) < want*0.5 {
		t.Fatalf("completed %d of ~%.0f scheduled ops", last.Done, want)
	}
}

// TestRunTracedStageDecomposition checks the tentpole invariant end to end:
// on a traced run, the per-stage spans telescope — the total time attributed
// to dispatch+table+fanout+deliver equals the total end-to-end time (the
// decomposition is exact per trace, so it is exact in aggregate too).
func TestRunTracedStageDecomposition(t *testing.T) {
	cfg := shortCfg("serial")
	cfg.Trace = true
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stages == nil {
		t.Fatal("traced run produced no stage decomposition")
	}
	st := rep.Stages
	if st.Traces == 0 {
		t.Fatal("no traces folded in")
	}
	if st.E2E.Count == 0 {
		t.Fatal("no end-to-end observations")
	}
	var stageSum float64
	for _, s := range st.Stages {
		stageSum += s.Mean * float64(s.Count)
	}
	e2eSum := st.E2E.Mean * float64(st.E2E.Count)
	if e2eSum <= 0 {
		t.Fatalf("e2e sum = %v", e2eSum)
	}
	if rel := math.Abs(stageSum-e2eSum) / e2eSum; rel > 0.01 {
		t.Fatalf("stage sums diverge from e2e: Σstages=%v e2e=%v rel=%v",
			stageSum, e2eSum, rel)
	}
	// The sum of stage p50s is only an approximation of the e2e p50 (medians
	// do not add), but for this unimodal workload it must land in the same
	// ballpark — the consistency check the ISSUE asks for.
	var p50Sum float64
	for _, s := range st.Stages {
		if s.Count > 0 {
			p50Sum += s.P50
		}
	}
	if p50Sum > 4*st.E2E.P99 {
		t.Fatalf("Σ stage p50s %v wildly above e2e p99 %v", p50Sum, st.E2E.P99)
	}
}

// TestRunQueueDepthGaugesQuiesce checks satellite 3: the sharded per-shard
// pending-uplink gauges and the cluster in-flight gauge read zero once a run
// has quiesced — nothing leaks a depth increment.
func TestRunQueueDepthGaugesQuiesce(t *testing.T) {
	for _, backend := range []string{"sharded", "cluster"} {
		backend := backend
		t.Run(backend, func(t *testing.T) {
			t.Parallel()
			reg := obs.NewRegistry()
			cfg := shortCfg(backend)
			cfg.Registry = reg
			rep, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			last := rep.Intervals[len(rep.Intervals)-1]
			if last.Depth != 0 {
				t.Fatalf("backend depth %d after quiesce, want 0", last.Depth)
			}
			found := false
			for name, v := range reg.Snapshot() {
				isDepth := strings.HasPrefix(name, "mobieyes_server_shard_pending_uplinks") ||
					strings.HasPrefix(name, "mobieyes_cluster_inflight_ops")
				if !isDepth {
					continue
				}
				found = true
				if g, ok := v.(float64); !ok || g != 0 {
					t.Errorf("%s = %v at quiescence, want 0", name, v)
				}
			}
			if !found {
				t.Fatal("no queue-depth gauges registered")
			}
		})
	}
}

// TestRunRejectsUnknownBackend pins the config validation error path.
func TestRunRejectsUnknownBackend(t *testing.T) {
	if _, err := Run(Config{Backend: "warp"}); err == nil {
		t.Fatal("unknown backend accepted")
	}
}

// TestWorkloadDeterminism: the op stream is a pure function of
// (seed, object, sequence) — two workloads replay identical messages.
func TestWorkloadDeterminism(t *testing.T) {
	a := NewWorkload(100, 5, 42)
	b := NewWorkload(100, 5, 42)
	for i := uint64(0); i < 1000; i++ {
		if ma, mb := a.Op(i), b.Op(i); ma != mb {
			t.Fatalf("op %d diverged: %#v vs %#v", i, ma, mb)
		}
	}
	c := NewWorkload(100, 5, 43)
	same := 0
	for i := uint64(0); i < 100; i++ {
		if a.Op(1000+i) == c.Op(i) {
			same++
		}
	}
	if same == 100 {
		t.Fatal("different seeds produced identical streams")
	}
}
