package load

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mobieyes/internal/model"
	"mobieyes/internal/obs"
	"mobieyes/internal/obs/trace"
)

// Config parameterizes one load run.
type Config struct {
	// Backend selects the target: serial | sharded | cluster | tcp.
	Backend string
	// Rate is the open-loop arrival rate in ops/sec.
	Rate float64
	// Duration is the measured window; Warmup before it is discarded.
	Duration time.Duration
	Warmup   time.Duration
	// Interval is the time-series sampling period.
	Interval time.Duration
	// Objects and Queries size the workload population.
	Objects int
	Queries int
	// Workers is the issuing pool size. The pool is fixed: when the
	// backend stalls, ops queue behind the schedule instead of spawning
	// unbounded goroutines, and the lateness is charged to their latency.
	Workers int
	// Shards and Nodes configure the sharded/tcp and cluster backends.
	Shards int
	Nodes  int
	// Seed makes the op stream deterministic.
	Seed uint64
	// Trace enables causal tracing and the per-stage decomposition in the
	// report; TraceSize is the flight-recorder ring capacity.
	Trace     bool
	TraceSize int
	// Registry, when non-nil, receives the backend's metrics (queue-depth
	// gauges, stage histograms) — share it with an obs HTTP endpoint to
	// watch a run live. Nil keeps a private registry.
	Registry *obs.Registry
}

func (cfg Config) withDefaults() Config {
	if cfg.Backend == "" {
		cfg.Backend = "serial"
	}
	if cfg.Rate <= 0 {
		cfg.Rate = 5000
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 2 * time.Second
	}
	if cfg.Warmup <= 0 {
		cfg.Warmup = 250 * time.Millisecond
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 250 * time.Millisecond
	}
	if cfg.Objects <= 0 {
		cfg.Objects = 1000
	}
	if cfg.Queries <= 0 {
		cfg.Queries = cfg.Objects / 20
		if cfg.Queries < 1 {
			cfg.Queries = 1
		}
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
		if cfg.Workers < 4 {
			cfg.Workers = 4
		}
	}
	if cfg.Nodes <= 0 {
		cfg.Nodes = 4
	}
	if cfg.TraceSize <= 0 {
		cfg.TraceSize = 1 << 18
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	return cfg
}

// Run executes one open-loop load run and returns its report.
//
// Ops are issued against a fixed arrival schedule: op i is due at
// start + i/Rate, a worker sleeps until then (or starts immediately when
// behind), and the op's latency is time from *scheduled* arrival to
// completion. That makes the quantiles coordinated-omission safe: a backend
// stall charges every op scheduled during the stall with its queueing delay
// instead of pausing the arrival clock (see EXPERIMENTS.md).
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	w := NewWorkload(cfg.Objects, cfg.Queries, cfg.Seed)

	var rec *trace.Recorder
	if cfg.Trace {
		rec = trace.NewRecorder(cfg.TraceSize)
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	t, err := newTarget(cfg, w, rec, reg)
	if err != nil {
		return nil, err
	}
	defer t.Close()

	var lv *obs.LatencyView
	if rec != nil {
		lv = obs.NewLatencyView(rec)
		if cfg.Registry != nil {
			lv.Instrument(reg)
		}
	}

	if err := setup(t, w); err != nil {
		return nil, err
	}
	// Setup traffic is not part of the measurement.
	lv.Discard()

	var (
		start    = time.Now()
		warmEnd  = start.Add(cfg.Warmup)
		end      = warmEnd.Add(cfg.Duration)
		next     atomic.Uint64 // op schedule index
		done     atomic.Int64  // completed ops (incl. warmup)
		measured atomic.Int64  // completed ops in the measured window
		opErr    atomic.Value  // first error any worker hit
		cum      = obs.NewHistogram(obs.HDRLatencyBuckets)
		cur      atomic.Pointer[obs.Histogram]
	)
	cur.Store(obs.NewHistogram(obs.HDRLatencyBuckets))

	interval := time.Duration(float64(time.Second) / cfg.Rate)
	var wg sync.WaitGroup
	for wk := 0; wk < cfg.Workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				sched := start.Add(time.Duration(i) * interval)
				if sched.After(end) {
					return
				}
				if d := time.Until(sched); d > 0 {
					time.Sleep(d)
				}
				m := w.Op(i)
				if err := t.Do(wk, m); err != nil {
					opErr.CompareAndSwap(nil, err)
					return
				}
				done.Add(1)
				if !sched.Before(warmEnd) {
					lat := time.Since(sched).Seconds()
					measured.Add(1)
					cum.Observe(lat)
					cur.Load().Observe(lat)
				}
			}
		}(wk)
	}

	// Sampler: one IntervalSample per tick until the workers finish.
	var (
		intervals   []IntervalSample
		prevDone    int64
		prevPause   uint64
		discarded   bool
		workersDone = make(chan struct{})
	)
	go func() {
		wg.Wait()
		close(workersDone)
	}()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	prevPause = ms.PauseTotalNs
	ticker := time.NewTicker(cfg.Interval)
	defer ticker.Stop()
	sample := func(now time.Time) {
		// Discard warmup traces once, at the first post-warmup sample, so
		// the stage decomposition covers only the measured window.
		if !discarded && now.After(warmEnd) {
			lv.Discard()
			discarded = true
		} else if lv != nil {
			// Fold (or, pre-warmup, just scan past) pending traces each tick
			// so ring wraparound cannot swallow ingress events.
			if discarded {
				lv.Collect()
			} else {
				lv.Discard()
			}
		}
		h := obs.NewHistogram(obs.HDRLatencyBuckets)
		old := cur.Swap(h)
		runtime.ReadMemStats(&ms)
		d := done.Load()
		elapsed := now.Sub(start).Seconds()
		sched := int64(elapsed * cfg.Rate)
		if lim := int64((cfg.Warmup + cfg.Duration).Seconds() * cfg.Rate); sched > lim {
			sched = lim
		}
		backlog := sched - d
		if backlog < 0 {
			backlog = 0
		}
		intervals = append(intervals, IntervalSample{
			T:          elapsed,
			Issued:     int64(next.Load()),
			Done:       d,
			Throughput: float64(d-prevDone) / cfg.Interval.Seconds(),
			Backlog:    backlog,
			Depth:      t.Depth(),
			Count:      old.Count(),
			P50:        old.Quantile(0.5),
			P90:        old.Quantile(0.9),
			P99:        old.Quantile(0.99),
			P999:       old.Quantile(0.999),
			Max:        old.Max(),
			GCPauseNs:  ms.PauseTotalNs - prevPause,
			Goroutines: runtime.NumGoroutine(),
		})
		prevDone = d
		prevPause = ms.PauseTotalNs
	}
loop:
	for {
		select {
		case now := <-ticker.C:
			sample(now)
		case <-workersDone:
			break loop
		}
	}
	if err := t.Quiesce(); err != nil {
		return nil, err
	}
	// The measured window runs from warmup end to the last completion: at
	// oversaturation workers finish the schedule late, and dividing by the
	// nominal duration would just echo the arrival rate back.
	wall := time.Since(start) - cfg.Warmup
	sample(time.Now())
	if err, ok := opErr.Load().(error); ok && err != nil {
		return nil, fmt.Errorf("load: %s worker failed: %w", cfg.Backend, err)
	}

	rep := &Report{
		Backend:   t.Name(),
		Rate:      cfg.Rate,
		Objects:   cfg.Objects,
		Queries:   cfg.Queries,
		Workers:   cfg.Workers,
		Shards:    cfg.Shards,
		Nodes:     cfg.Nodes,
		Seed:      cfg.Seed,
		Duration:  cfg.Duration.Seconds(),
		Warmup:    cfg.Warmup.Seconds(),
		Sustained: float64(measured.Load()) / wall.Seconds(),
		Delivered: t.Delivered(),
		Summary:   summarize(cum),
		Intervals: intervals,
	}
	if lv != nil {
		snap := lv.Snapshot()
		rep.Stages = &snap
	}
	return rep, nil
}

// setup drives the population into the backend: every object joins its
// initial cell, a range query is installed on each focal object, and each
// focal's motion state is reported so the §3.3 pending installations
// complete deterministically (no reliance on the FocalInfoRequest round
// trip reaching a simulated device).
func setup(t Target, w *Workload) error {
	for oid := 1; oid <= w.NumObjects(); oid++ {
		if err := t.Do(0, w.Join(model.ObjectID(oid))); err != nil {
			return fmt.Errorf("load: join %d: %w", oid, err)
		}
	}
	qids := make([]model.QueryID, 0, w.NumQueries())
	for oid := 1; oid <= w.NumQueries(); oid++ {
		qids = append(qids, t.Install(model.ObjectID(oid), w.Radius, 100))
	}
	for oid := 1; oid <= w.NumQueries(); oid++ {
		if err := t.Do(0, w.FocalInfo(model.ObjectID(oid))); err != nil {
			return fmt.Errorf("load: focal info %d: %w", oid, err)
		}
	}
	w.SetQueryIDs(qids)
	return t.Quiesce()
}
