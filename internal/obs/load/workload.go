// Package load is an open-loop, coordinated-omission-safe load generator for
// the MobiEyes server backends. Operations are issued on a fixed arrival
// schedule derived from the target rate — op i is due at start + i/rate — and
// each op's latency is measured from its *scheduled* time, not from when a
// worker got around to issuing it. A backend stall therefore charges every op
// that should have run during the stall with its full queueing delay, instead
// of silently pausing the clock the way closed-loop benchmarks do (the
// coordinated-omission error; see EXPERIMENTS.md).
//
// The generator drives any core.ServerAPI backend — the serial server, the
// sharded engine, the in-process cluster, and the real TCP stack via
// internal/remote — and emits a time-series Report (one sample per interval:
// throughput, latency quantiles, backlog, GC pause, goroutines) plus an
// optional per-stage pipeline decomposition derived from the causal-tracing
// flight recorder (obs.LatencyView).
package load

import (
	"math"
	"sync"

	"mobieyes/internal/geo"
	"mobieyes/internal/grid"
	"mobieyes/internal/model"
	"mobieyes/internal/msg"
)

// workloadAlpha is the grid cell side (miles); matches the paper's default.
const workloadAlpha = 5.0

// splitmix64 is the op-stream PRNG: one multiply-xor chain per draw, so
// every (seed, object, op-sequence) triple yields an independent value.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// objState is one simulated device's mutable state. Ops round-robin over
// objects, so with more workers than objects two workers can hold ops for
// the same object concurrently; the per-object mutex keeps each device's
// motion history internally consistent (message contents stay deterministic
// per (seed, object, sequence); only the interleaving across objects varies
// with scheduling).
type objState struct {
	mu   sync.Mutex
	pos  geo.Point
	vel  geo.Vector
	cell grid.CellID
	seq  uint64
	in   bool // last reported containment state
}

// Workload generates the deterministic op stream: a seeded population of
// moving objects on a grid sized to ~4 objects per cell, the first Queries
// objects focal. Safe for concurrent Op calls.
type Workload struct {
	G       *grid.Grid
	UoD     geo.Rect
	Radius  float64 // query region radius
	n       int
	queries int
	seed    uint64
	objs    []objState
	qids    []model.QueryID // filled by the runner after installation
}

// NewWorkload builds a workload of n objects (the first queries of them
// focal) with deterministic initial placement from seed.
func NewWorkload(n, queries int, seed uint64) *Workload {
	if n < 1 {
		n = 1
	}
	if queries < 1 {
		queries = 1
	}
	if queries > n {
		queries = n
	}
	// ~4 objects per cell, at least a 4×4 grid so monitoring regions have
	// room to move.
	cols := int(math.Ceil(math.Sqrt(float64(n) / 4)))
	if cols < 4 {
		cols = 4
	}
	side := float64(cols) * workloadAlpha
	uod := geo.NewRect(0, 0, side, side)
	w := &Workload{
		G:       grid.New(uod, workloadAlpha),
		UoD:     uod,
		Radius:  workloadAlpha * 1.5,
		n:       n,
		queries: queries,
		seed:    seed,
		objs:    make([]objState, n),
	}
	for i := range w.objs {
		o := &w.objs[i]
		r := splitmix64(seed ^ uint64(i+1))
		o.pos = geo.Point{
			X: float64(r%100000) / 100000 * side,
			Y: float64(splitmix64(r)%100000) / 100000 * side,
		}
		o.vel = w.randVel(splitmix64(r + 1))
		o.cell = w.G.CellOf(o.pos)
	}
	return w
}

// NumObjects returns the population size.
func (w *Workload) NumObjects() int { return w.n }

// NumQueries returns the number of focal objects / installed queries.
func (w *Workload) NumQueries() int { return w.queries }

// randVel draws a bounded velocity vector (≤ ~50 mph per axis).
func (w *Workload) randVel(r uint64) geo.Vector {
	return geo.Vector{
		X: float64(int64(r%1000)-500) / 10,
		Y: float64(int64(splitmix64(r)%1000)-500) / 10,
	}
}

// invalidCell is the "no previous cell" marker a join report carries.
var invalidCell = grid.CellID{Col: -1, Row: -1}

// Join returns object oid's join report: a cell-change with an invalid
// previous cell, carrying the object's initial motion state.
func (w *Workload) Join(oid model.ObjectID) msg.Message {
	o := &w.objs[oid-1]
	o.mu.Lock()
	defer o.mu.Unlock()
	return msg.CellChangeReport{
		OID: oid, PrevCell: invalidCell, NewCell: o.cell,
		Pos: o.pos, Vel: o.vel, Tm: 0,
	}
}

// FocalInfo returns object oid's motion state as a FocalInfoResponse — the
// runner sends it right after installing a query on oid, completing the
// §3.3 pending installation without a FocalInfoRequest round trip.
func (w *Workload) FocalInfo(oid model.ObjectID) msg.Message {
	o := &w.objs[oid-1]
	o.mu.Lock()
	defer o.mu.Unlock()
	o.seq++
	return msg.FocalInfoResponse{OID: oid, Pos: o.pos, Vel: o.vel, Tm: w.tm(o)}
}

// SetQueryIDs records the installed query identifiers so containment
// reports can target them.
func (w *Workload) SetQueryIDs(qids []model.QueryID) { w.qids = qids }

// tm is the object's synthetic protocol clock: strictly increasing per
// object so motion-state freshness checks always accept the report.
func (w *Workload) tm(o *objState) model.Time {
	return model.Time(float64(o.seq) * 1e-3)
}

// Op generates the i-th operation of the run. Ops round-robin over objects;
// the per-(object, sequence) draw decides the message kind:
//
//   - focal objects (oid ≤ queries) mostly report velocity-vector changes
//     (the §3.4 dead-reckoning path) and occasionally cross cells (§3.5,
//     the expensive path: monitoring-region relocation + broadcast);
//   - non-focal objects mostly cross cells and occasionally flip a
//     containment report (§3.6, the differential result path).
func (w *Workload) Op(i uint64) msg.Message {
	oid := model.ObjectID(i%uint64(w.n)) + 1
	o := &w.objs[oid-1]
	o.mu.Lock()
	defer o.mu.Unlock()
	o.seq++
	r := splitmix64(w.seed ^ uint64(oid)<<24 ^ o.seq)
	focal := int(oid) <= w.queries
	switch {
	case focal && r%10 < 6:
		o.vel = w.randVel(r >> 8)
		return msg.VelocityReport{OID: oid, Pos: o.pos, Vel: o.vel, Tm: w.tm(o)}
	case !focal && r%10 >= 8 && len(w.qids) > 0:
		o.in = !o.in
		qid := w.qids[(int(oid)-1)%len(w.qids)]
		return msg.ContainmentReport{OID: oid, QID: qid, IsTarget: o.in}
	default:
		return w.cellChange(oid, o, r>>8)
	}
}

// cellChange moves the object to a neighboring cell (bouncing at the grid
// border) and returns the corresponding report.
func (w *Workload) cellChange(oid model.ObjectID, o *objState, r uint64) msg.Message {
	prev := o.cell
	dx := int(r%3) - 1
	dy := int(splitmix64(r)%3) - 1
	c := grid.CellID{Col: prev.Col + dx, Row: prev.Row + dy}
	if c.Col < 0 {
		c.Col = 1
	} else if c.Col >= w.G.Cols() {
		c.Col = w.G.Cols() - 2
	}
	if c.Row < 0 {
		c.Row = 1
	} else if c.Row >= w.G.Rows() {
		c.Row = w.G.Rows() - 2
	}
	o.cell = c
	o.pos = w.G.CellRect(c).Center()
	return msg.CellChangeReport{
		OID: oid, PrevCell: prev, NewCell: c,
		Pos: o.pos, Vel: o.vel, Tm: w.tm(o),
	}
}
