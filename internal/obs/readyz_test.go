package obs

import (
	"io"
	"net/http"
	"testing"
)

// TestReadyz: with no probe installed /readyz mirrors /healthz; a probe can
// degrade the answer (still 200) or fail it (503); nil restores the default.
func TestReadyz(t *testing.T) {
	h, err := ListenAndServe("127.0.0.1:0", NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	get := func() (int, string) {
		resp, err := http.Get("http://" + h.Addr().String() + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get(); code != 200 || body != "ok\n" {
		t.Errorf("default /readyz: code %d body %q", code, body)
	}
	h.SetReady(func() (string, bool) { return "degraded", true })
	if code, body := get(); code != 200 || body != "degraded\n" {
		t.Errorf("degraded /readyz: code %d body %q", code, body)
	}
	h.SetReady(func() (string, bool) { return "failing", false })
	if code, body := get(); code != 503 || body != "failing\n" {
		t.Errorf("failing /readyz: code %d body %q", code, body)
	}
	h.SetReady(nil)
	if code, body := get(); code != 200 || body != "ok\n" {
		t.Errorf("reset /readyz: code %d body %q", code, body)
	}

	var nilSrv *HTTPServer
	nilSrv.SetReady(func() (string, bool) { return "x", false }) // must not panic
}
