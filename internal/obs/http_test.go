package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"mobieyes/internal/obs/trace"
)

// httpGet fetches path from ts and returns status, Content-Type, and body.
func httpGet(t *testing.T, ts *httptest.Server, path string) (int, string, string) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, resp.Header.Get("Content-Type"), string(body)
}

// TestHandlerContentTypes pins status codes and content types of every
// non-pprof route, so scrapers and dashboards can rely on them.
func TestHandlerContentTypes(t *testing.T) {
	r := NewRegistry()
	r.Counter("mobieyes_ct_total", "").Inc()
	ts := httptest.NewServer(NewMux(r))
	defer ts.Close()

	for _, tc := range []struct {
		path, wantCT string
	}{
		{"/metrics", "text/plain; version=0.0.4; charset=utf-8"},
		{"/debug/vars", "application/json; charset=utf-8"},
		{"/healthz", "text/plain; charset=utf-8"},
	} {
		code, ct, body := httpGet(t, ts, tc.path)
		if code != http.StatusOK {
			t.Errorf("%s: code %d", tc.path, code)
		}
		if !strings.HasPrefix(ct, tc.wantCT) {
			t.Errorf("%s: Content-Type %q, want prefix %q", tc.path, ct, tc.wantCT)
		}
		if body == "" {
			t.Errorf("%s: empty body", tc.path)
		}
	}
}

// TestScrapeHTTPDuringRegistration hammers the HTTP endpoints while another
// goroutine registers new series — the full handler stack must stay
// race-free, not just WritePrometheus.
func TestScrapeHTTPDuringRegistration(t *testing.T) {
	r := NewRegistry()
	ts := httptest.NewServer(NewMux(r))
	defer ts.Close()

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			sh := strconv.Itoa(i % 64)
			r.Counter("churn_http_total", "", "shard", sh).Inc()
			r.GaugeFunc("churn_http_fn", "", func() float64 { return float64(i) }, "shard", sh)
		}
	}()
	for i := 0; i < 50; i++ {
		for _, path := range []string{"/metrics", "/debug/vars", "/healthz"} {
			code, _, _ := httpGet(t, ts, path)
			if code != http.StatusOK {
				t.Fatalf("scrape %d %s: code %d", i, path, code)
			}
		}
	}
	close(done)
	wg.Wait()
}

// TestRuntimeGauges: RegisterRuntime exposes live runtime stats, and calling
// it twice must not panic (re-registration replaces the functions).
func TestRuntimeGauges(t *testing.T) {
	r := NewRegistry()
	RegisterRuntime(r)
	RegisterRuntime(r)
	snap := r.Snapshot()
	for _, name := range []string{
		"mobieyes_go_goroutines",
		"mobieyes_go_heap_bytes",
		"mobieyes_go_heap_objects",
		"mobieyes_go_next_gc_bytes",
		"mobieyes_go_gc_total",
		"mobieyes_go_gc_pause_total_seconds",
		"mobieyes_go_gc_last_pause_seconds",
	} {
		v, ok := snap[name].(float64)
		if !ok {
			t.Fatalf("%s missing from snapshot", name)
		}
		if v < 0 {
			t.Errorf("%s = %v, want >= 0", name, v)
		}
	}
	if snap["mobieyes_go_goroutines"].(float64) < 1 {
		t.Errorf("goroutines = %v, want >= 1", snap["mobieyes_go_goroutines"])
	}
	if snap["mobieyes_go_heap_bytes"].(float64) <= 0 {
		t.Errorf("heap_bytes = %v, want > 0", snap["mobieyes_go_heap_bytes"])
	}
}

// eventsFixture builds a recorder holding two causal chains about distinct
// objects/queries plus an untraced note.
func eventsFixture() *trace.Recorder {
	rec := trace.NewRecorder(256)
	t1, t2 := rec.NextID(), rec.NextID()
	rec.Event(t1, trace.KindIngress, "server", 1, 0, "PositionReport")
	rec.Event(t1, trace.KindTable, "server", 1, 0, "FOT upsert")
	rec.Event(t2, trace.KindIngress, "server", 2, 7, "InstallQuery")
	rec.Event(t2, trace.KindBroadcast, "server", 2, 7, "QueryInstall")
	rec.Event(0, trace.KindNote, "server", 0, 0, "untraced note")
	return rec
}

// TestDebugEventsEndpoint covers /debug/events: default text dump, the
// trace/oid/qid filters, causal closure, JSON output, and bad parameters.
func TestDebugEventsEndpoint(t *testing.T) {
	rec := eventsFixture()
	mux := http.NewServeMux()
	AttachEvents(mux, rec)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	code, ct, body := httpGet(t, ts, "/debug/events")
	if code != http.StatusOK || !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/debug/events: code %d ct %q", code, ct)
	}
	for _, want := range []string{"ingress", "FOT upsert", "QueryInstall", "untraced note"} {
		if !strings.Contains(body, want) {
			t.Errorf("text dump missing %q in:\n%s", want, body)
		}
	}

	if _, _, body := httpGet(t, ts, "/debug/events?oid=1"); strings.Contains(body, "InstallQuery") ||
		!strings.Contains(body, "FOT upsert") {
		t.Errorf("oid filter leaked other events:\n%s", body)
	}
	if _, _, body := httpGet(t, ts, "/debug/events?qid=7"); !strings.Contains(body, "QueryInstall") ||
		strings.Contains(body, "FOT upsert") {
		t.Errorf("qid filter wrong:\n%s", body)
	}
	if _, _, body := httpGet(t, ts, "/debug/events?trace=1"); !strings.Contains(body, "PositionReport") ||
		strings.Contains(body, "untraced note") {
		t.Errorf("trace filter wrong:\n%s", body)
	}
	// causal=1 expands oid=2 to its whole chains, including the qid=7 rows.
	if _, _, body := httpGet(t, ts, "/debug/events?oid=2&causal=1"); !strings.Contains(body, "QueryInstall") ||
		strings.Contains(body, "FOT upsert") {
		t.Errorf("causal closure wrong:\n%s", body)
	}

	code, ct, body = httpGet(t, ts, "/debug/events?format=json&qid=7")
	if code != http.StatusOK || !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("json format: code %d ct %q", code, ct)
	}
	var evs []trace.Event
	if err := json.Unmarshal([]byte(body), &evs); err != nil {
		t.Fatalf("json body: %v\n%s", err, body)
	}
	if len(evs) != 2 || evs[0].QID != 7 || evs[1].Note != "QueryInstall" {
		t.Errorf("json events = %+v", evs)
	}

	if code, _, _ := httpGet(t, ts, "/debug/events?oid=bogus"); code != http.StatusBadRequest {
		t.Errorf("bad oid: code %d, want 400", code)
	}
	if code, _, _ := httpGet(t, ts, "/debug/events?n=-3"); code != http.StatusBadRequest {
		t.Errorf("negative n: code %d, want 400", code)
	}
}

// TestDebugEventsDisabled: a nil recorder answers 404, distinguishing
// "tracing off" from "no events recorded yet".
func TestDebugEventsDisabled(t *testing.T) {
	mux := http.NewServeMux()
	AttachEvents(mux, nil)
	ts := httptest.NewServer(mux)
	defer ts.Close()
	if code, _, _ := httpGet(t, ts, "/debug/events"); code != http.StatusNotFound {
		t.Errorf("/debug/events with nil recorder: code %d, want 404", code)
	}
}

// TestListenAndServeTraced: the standalone endpoint wires the recorder in
// and still serves runtime gauges on /metrics.
func TestListenAndServeTraced(t *testing.T) {
	r := NewRegistry()
	rec := eventsFixture()
	h, err := ListenAndServeTraced("127.0.0.1:0", r, rec)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	get := func(path string) string {
		resp, err := http.Get("http://" + h.Addr().String() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return string(b)
	}
	if body := get("/debug/events?trace=2"); !strings.Contains(body, "QueryInstall") {
		t.Errorf("/debug/events body:\n%s", body)
	}
	if body := get("/metrics"); !strings.Contains(body, "mobieyes_go_goroutines") {
		t.Errorf("/metrics missing runtime gauges:\n%s", body)
	}
}
