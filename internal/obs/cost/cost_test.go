package cost

import (
	"strings"
	"sync"
	"testing"

	"mobieyes/internal/msg"
	"mobieyes/internal/obs"
)

// TestNilAccountant pins the disabled path: every method on a nil
// accountant is a no-op that neither panics nor allocates state.
func TestNilAccountant(t *testing.T) {
	var a *Accountant
	a.Configure(10, 4, 2)
	a.SetMode("EQP")
	a.Uplink(msg.KindVelocityReport, 32)
	a.Downlink(msg.KindVelocityChange, 64, 3)
	a.ShardUplink(1, msg.KindVelocityReport, 32)
	a.CellUp(3, 32)
	a.CellDown(3, 64)
	a.StationUp(1, 32)
	a.StationDown(1, 64)
	a.QueryUp(7, 32)
	a.QueryDown(7, 64, 2)
	a.ObjectUp(9, 32)
	a.ObjectDown(9, 64, 1)
	a.Compute(UnitTableOp, 5)
	a.QualityStep(10, 1, 2)
	a.ObserveStaleness(4)
	a.Reset()
	if got := a.Snapshot(); got.Global.UpMsgs != 0 {
		t.Errorf("nil snapshot has traffic: %+v", got)
	}
	if a.Mode() != "" {
		t.Errorf("nil Mode() = %q", a.Mode())
	}
	if _, ok := a.CellTally(0); ok {
		t.Error("nil CellTally ok")
	}
	if _, ok := a.QuerySnap(1); ok {
		t.Error("nil QuerySnap ok")
	}
}

func TestGlobalAttribution(t *testing.T) {
	a := New()
	a.Configure(100, 9, 4)
	a.SetMode("LQP")
	a.Uplink(msg.KindVelocityReport, 30)
	a.Uplink(msg.KindVelocityReport, 30)
	a.Uplink(msg.KindCellChangeReport, 40)
	a.Downlink(msg.KindVelocityChange, 50, 3) // broadcast via 3 stations

	g := a.Global()
	if got := g.UpMsgs[msg.KindVelocityReport]; got != 2 {
		t.Errorf("VelocityReport up msgs = %d, want 2", got)
	}
	if got := g.UpBytes[msg.KindVelocityReport]; got != 60 {
		t.Errorf("VelocityReport up bytes = %d, want 60", got)
	}
	if got := g.DownMsgs[msg.KindVelocityChange]; got != 3 {
		t.Errorf("VelocityChange down msgs = %d, want 3", got)
	}
	if got := g.DownBytes[msg.KindVelocityChange]; got != 150 {
		t.Errorf("VelocityChange down bytes = %d, want 150", got)
	}

	rep := g.Report()
	if rep.UpMsgs != 3 || rep.DownMsgs != 3 || rep.UpBytes != 100 || rep.DownBytes != 150 {
		t.Errorf("report totals = %+v", rep)
	}
	if len(rep.Kinds) != 3 {
		t.Errorf("report kinds = %d, want 3 (zero kinds omitted)", len(rep.Kinds))
	}
	if a.Snapshot().Mode != "LQP" {
		t.Errorf("snapshot mode = %q", a.Snapshot().Mode)
	}
}

// TestShardRouterIdentity pins the migration-attribution invariant:
// uplinks charged to shards plus the router ledger must equal the global
// uplink count, including stale drops (out-of-range shard index → router).
func TestShardRouterIdentity(t *testing.T) {
	a := New()
	a.Configure(0, 0, 3)
	kinds := []msg.Kind{msg.KindVelocityReport, msg.KindContainmentReport, msg.KindCellChangeReport}
	shardIdx := []int{0, 1, 2, -1, 1, 99, 0} // -1 and 99 → router
	for i, sh := range shardIdx {
		k := kinds[i%len(kinds)]
		a.Uplink(k, 30)
		a.ShardUplink(sh, k, 30)
	}
	var shardSum int64
	for _, s := range a.Shards() {
		for k := 0; k < msg.NumKinds; k++ {
			shardSum += s.UpMsgs[k]
		}
	}
	var routerSum int64
	for k := 0; k < msg.NumKinds; k++ {
		routerSum += a.Router().UpMsgs[k]
	}
	var globalSum int64
	for k := 0; k < msg.NumKinds; k++ {
		globalSum += a.Global().UpMsgs[k]
	}
	if routerSum != 2 {
		t.Errorf("router uplinks = %d, want 2", routerSum)
	}
	if shardSum+routerSum != globalSum {
		t.Errorf("shards(%d) + router(%d) != global(%d)", shardSum, routerSum, globalSum)
	}
}

func TestScopedTallies(t *testing.T) {
	a := New()
	a.Configure(16, 4, 0)
	a.CellUp(3, 30)
	a.CellUp(3, 30)
	a.CellDown(5, 50)
	a.StationUp(1, 30)
	a.StationDown(2, 50)
	a.StationDown(2, 50)
	a.QueryUp(7, 25)
	a.QueryDown(7, 60, 3)
	a.ObjectUp(42, 30)

	if ts, ok := a.CellTally(3); !ok || ts.UpMsgs != 2 || ts.UpBytes != 60 {
		t.Errorf("cell 3 = %+v ok=%v", ts, ok)
	}
	if ts, ok := a.CellTally(5); !ok || ts.DownMsgs != 1 || ts.DownBytes != 50 {
		t.Errorf("cell 5 = %+v ok=%v", ts, ok)
	}
	if _, ok := a.CellTally(99); ok {
		t.Error("out-of-range cell tally ok")
	}
	if ts, ok := a.StationTally(2); !ok || ts.DownMsgs != 2 || ts.DownBytes != 100 {
		t.Errorf("station 2 = %+v ok=%v", ts, ok)
	}
	if ts, ok := a.QuerySnap(7); !ok || ts.UpMsgs != 1 || ts.DownMsgs != 3 || ts.DownBytes != 180 {
		t.Errorf("query 7 = %+v ok=%v", ts, ok)
	}
	if _, ok := a.QuerySnap(8); ok {
		t.Error("unknown query snap ok")
	}
	if ts, ok := a.ObjectSnap(42); !ok || ts.UpMsgs != 1 {
		t.Errorf("object 42 = %+v ok=%v", ts, ok)
	}
	// Out-of-range fixed scopes are dropped silently, not panics.
	a.CellUp(-1, 10)
	a.CellUp(1000, 10)
	a.StationDown(77, 10)

	s := a.Snapshot()
	if len(s.Cells) != 2 || len(s.Stations) != 2 || len(s.Queries) != 1 || len(s.Objects) != 1 {
		t.Errorf("snapshot scopes: %d cells %d stations %d queries %d objects",
			len(s.Cells), len(s.Stations), len(s.Queries), len(s.Objects))
	}
}

func TestQuality(t *testing.T) {
	a := New()
	a.QualityStep(8, 2, 0)  // precision 0.8, recall 1
	a.QualityStep(9, 1, 3)  // precision 0.9, recall 0.75
	q := a.Snapshot().Quality
	if q == nil {
		t.Fatal("no quality section")
	}
	if q.Precision != 0.9 || q.Recall != 0.75 {
		t.Errorf("latest precision/recall = %v/%v", q.Precision, q.Recall)
	}
	if q.TP != 17 || q.FP != 3 || q.FN != 3 {
		t.Errorf("cumulative tp/fp/fn = %d/%d/%d", q.TP, q.FP, q.FN)
	}
	if q.CumPrecision != 0.85 {
		t.Errorf("cum precision = %v, want 0.85", q.CumPrecision)
	}
	// Empty steps count as perfect, not NaN.
	a.QualityStep(0, 0, 0)
	q2 := a.qualityReport()
	if q2.Precision != 1 || q2.Recall != 1 {
		t.Errorf("empty-step precision/recall = %v/%v, want 1/1", q2.Precision, q2.Recall)
	}
}

func TestStalenessBuckets(t *testing.T) {
	a := New()
	for _, steps := range []int64{0, 1, 1, 4, 21, 100} {
		a.ObserveStaleness(steps)
	}
	q := a.qualityReport()
	if q.StaleCount != 6 || q.StaleSum != 127 {
		t.Errorf("stale count/sum = %d/%d", q.StaleCount, q.StaleSum)
	}
	want := map[int64]int64{0: 1, 1: 2, 5: 1, 21: 1, -1: 1}
	got := map[int64]int64{}
	for _, b := range q.Staleness {
		got[b.LE] = b.Count
	}
	for le, n := range want {
		if got[le] != n {
			t.Errorf("bucket le=%d count = %d, want %d", le, got[le], n)
		}
	}
}

func TestReset(t *testing.T) {
	a := New()
	a.Configure(4, 2, 2)
	a.SetMode("EQP")
	a.Uplink(msg.KindPositionReport, 26)
	a.ShardUplink(1, msg.KindPositionReport, 26)
	a.ShardUplink(-1, msg.KindPositionReport, 26)
	a.CellUp(1, 26)
	a.StationDown(0, 40)
	a.QueryUp(1, 26)
	a.ObjectDown(2, 40, 1)
	a.Compute(UnitSetCover, 3)
	a.QualityStep(5, 1, 1)
	a.ObserveStaleness(2)
	a.Reset()
	s := a.Snapshot()
	if s.Global.UpMsgs != 0 || s.Global.DownMsgs != 0 || len(s.Global.Compute) != 0 {
		t.Errorf("global not reset: %+v", s.Global)
	}
	if s.Router != nil || len(s.Cells) != 0 || len(s.Stations) != 0 ||
		len(s.Queries) != 0 || len(s.Objects) != 0 || s.Quality != nil {
		t.Errorf("scopes not reset: %+v", s)
	}
	if len(s.Shards) != 2 {
		t.Errorf("Reset dropped shard configuration: %d shards", len(s.Shards))
	}
	if s.Mode != "EQP" {
		t.Errorf("Reset cleared mode: %q", s.Mode)
	}
}

// TestScrapeDuringUpdate hammers every attribution path from writer
// goroutines while readers snapshot, scrape a registry, and reset — the
// -race ledger test the satellite list requires.
func TestScrapeDuringUpdate(t *testing.T) {
	a := New()
	a.Configure(64, 8, 4)
	reg := obs.NewRegistry()
	a.Instrument(reg)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := msg.Kind(i % msg.NumKinds)
				a.Uplink(k, 30)
				a.Downlink(k, 40, 2)
				a.ShardUplink(i%5-1, k, 30)
				a.CellUp(int32(i%64), 30)
				a.StationDown(int32(i%8), 40)
				a.QueryUp(int64(i%10), 30)
				a.ObjectDown(int64(i%10), 40, 1)
				a.Compute(Unit(i%NumUnits), 1)
				a.QualityStep(3, 1, 1)
				a.ObserveStaleness(int64(i % 30))
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_ = a.Snapshot()
				var sb strings.Builder
				if err := reg.WritePrometheus(&sb); err != nil {
					t.Error(err)
					return
				}
				if !strings.Contains(sb.String(), "mobieyes_cost_msgs_total") {
					t.Error("scrape missing cost metrics")
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			a.Reset()
		}
	}()
	// Let readers finish, then release writers.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for i := 0; i < 3; i++ {
		_ = a.Snapshot()
	}
	close(stop)
	<-done
}

func TestUnitStrings(t *testing.T) {
	seen := map[string]bool{}
	for u := 0; u < NumUnits; u++ {
		s := Unit(u).String()
		if s == "UnknownUnit" || seen[s] {
			t.Errorf("unit %d name %q invalid or duplicate", u, s)
		}
		seen[s] = true
	}
	if Unit(-1).String() != "UnknownUnit" || Unit(NumUnits).String() != "UnknownUnit" {
		t.Error("out-of-range unit names")
	}
}

func TestWriteText(t *testing.T) {
	a := New()
	a.Configure(4, 2, 2)
	a.SetMode("EQP")
	a.Uplink(msg.KindVelocityReport, 30)
	a.ShardUplink(0, msg.KindVelocityReport, 30)
	a.Downlink(msg.KindVelocityChange, 50, 2)
	a.StationDown(1, 50)
	a.Compute(UnitSetCover, 1)
	a.QualityStep(9, 1, 0)
	a.ObserveStaleness(3)
	var sb strings.Builder
	a.Snapshot().WriteText(&sb)
	out := sb.String()
	for _, want := range []string{"mode", "EQP", "VelocityReport", "VelocityChange",
		"SetCover", "shard 0", "station 1", "precision", "staleness"} {
		if !strings.Contains(out, want) {
			t.Errorf("text report missing %q:\n%s", want, out)
		}
	}
}
