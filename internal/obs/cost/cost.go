// Package cost is the protocol cost & accuracy accounting layer: a
// dependency-free set of hierarchical ledgers that attribute every protocol
// action to the cost axes of the paper's evaluation (§6) — uplink/downlink
// message counts and wire bytes by message kind, broadcast fan-out per base
// station, object-side computation units, and server-side work — plus live
// answer-quality gauges (precision/recall against ground truth and a
// result-staleness histogram).
//
// Hierarchy and attribution rules (DESIGN.md §12):
//
//   - The global ledger is filled exactly once per message, at the transport
//     boundary: the simulated medium (internal/sim) or the frame codec
//     (internal/remote, bytes-on-wire including the length prefix). A
//     broadcast relayed through k base stations counts as k downlink
//     messages, matching the paper's wireless-medium accounting.
//   - Per-shard ledgers are filled at the sharded router's dispatch points,
//     attributing each uplink to the shard whose tables it mutates. Uplinks
//     the router drops as stale (the owning shard moved mid-flight) or
//     handles itself go to the router ledger, so
//     sum(shards) + router == global uplinks, exactly, even across focal
//     migrations.
//   - Per-cell and per-station tallies are filled by the transport: an
//     uplink is charged to the sender's current grid cell and covering base
//     station; a broadcast is charged to every station it is relayed
//     through and every cell it reaches.
//   - Per-query and per-object tallies are filled at the server's
//     broadcast/unicast funnels using the protocol reference carried by
//     each message (which query or object it concerns), with the model wire
//     size — these are protocol-level attributions, not transport bytes.
//   - Compute units are charged where the work happens: clients charge
//     dead-reckoning evaluations, containment checks and LQT scans; the
//     server charges table operations and RQI cell touches; the network
//     layer charges set-cover computations.
//
// Everything is nil-safe: every method on a nil *Accountant is a no-op
// costing ~1–2 ns (one nil check), so instrumented code needs no "is
// accounting on?" branches and pays nothing when accounting is off. Enabled
// sites are one or two atomic adds. All methods are safe for concurrent use
// after Configure.
package cost

import (
	"sync"

	"mobieyes/internal/msg"
	"mobieyes/internal/obs"
)

// Unit enumerates the computation-unit axes of the paper's evaluation:
// object-side work (§6.4: dead-reckoning evaluations, containment checks,
// LQT scans) and server-side work (table operations, RQI cell touches,
// set-cover computations for broadcast planning).
type Unit int

const (
	// UnitDeadReckoning is one object-side dead-reckoning deviation check.
	UnitDeadReckoning Unit = iota
	// UnitContainment is one object-side containment (region or focal-group
	// distance) evaluation.
	UnitContainment
	// UnitLQTScan is one object-side scan over an LQT entry.
	UnitLQTScan
	// UnitTableOp is one server-side FOT/SQT/result-table operation.
	UnitTableOp
	// UnitRQITouch is one server-side RQI cell insert/remove.
	UnitRQITouch
	// UnitSetCover is one greedy set-cover computation for broadcast
	// planning (network.Deployment.Cover).
	UnitSetCover

	numUnits
)

// NumUnits is the number of distinct computation units.
const NumUnits = int(numUnits)

var unitNames = [...]string{
	"DeadReckoning", "Containment", "LQTScan",
	"TableOp", "RQITouch", "SetCover",
}

// String implements fmt.Stringer.
func (u Unit) String() string {
	if u < 0 || int(u) >= len(unitNames) {
		return "UnknownUnit"
	}
	return unitNames[u]
}

// A Ledger tallies messages and wire bytes by direction and message kind,
// plus computation units. All fields are atomic counters; the zero value is
// ready to use and safe for concurrent use.
type Ledger struct {
	upMsgs    [msg.NumKinds]obs.Counter
	upBytes   [msg.NumKinds]obs.Counter
	downMsgs  [msg.NumKinds]obs.Counter
	downBytes [msg.NumKinds]obs.Counter
	compute   [NumUnits]obs.Counter
}

func (l *Ledger) uplink(k msg.Kind, bytes int64) {
	l.upMsgs[k].Add(1)
	l.upBytes[k].Add(bytes)
}

func (l *Ledger) downlink(k msg.Kind, bytes, copies int64) {
	l.downMsgs[k].Add(copies)
	l.downBytes[k].Add(bytes * copies)
}

// UplinkMsgs returns the ledger's total uplink message count.
func (l *Ledger) UplinkMsgs() int64 { return sumCounters(l.upMsgs[:]) }

// DownlinkMsgs returns the ledger's total downlink message count.
func (l *Ledger) DownlinkMsgs() int64 { return sumCounters(l.downMsgs[:]) }

// UplinkBytes returns the ledger's total uplink bytes.
func (l *Ledger) UplinkBytes() int64 { return sumCounters(l.upBytes[:]) }

// DownlinkBytes returns the ledger's total downlink bytes.
func (l *Ledger) DownlinkBytes() int64 { return sumCounters(l.downBytes[:]) }

// ComputeUnits returns the tally for one computation unit.
func (l *Ledger) ComputeUnits(u Unit) int64 { return l.compute[u].Value() }

// LedgerSnap is a point-in-time copy of a Ledger. It is a comparable value
// (fixed-size arrays), so two snapshots can be checked for exact equality
// with == — the property the simtest serial-vs-sharded ledger oracle uses.
type LedgerSnap struct {
	UpMsgs    [msg.NumKinds]int64
	UpBytes   [msg.NumKinds]int64
	DownMsgs  [msg.NumKinds]int64
	DownBytes [msg.NumKinds]int64
	Compute   [NumUnits]int64
}

func sumInt64(vs []int64) int64 {
	var n int64
	for _, v := range vs {
		n += v
	}
	return n
}

// UplinkMsgs returns the snapshot's total uplink messages across kinds.
func (s LedgerSnap) UplinkMsgs() int64 { return sumInt64(s.UpMsgs[:]) }

// UplinkBytes returns the snapshot's total uplink bytes.
func (s LedgerSnap) UplinkBytes() int64 { return sumInt64(s.UpBytes[:]) }

// DownlinkMsgs returns the snapshot's total delivered downlink messages.
func (s LedgerSnap) DownlinkMsgs() int64 { return sumInt64(s.DownMsgs[:]) }

// DownlinkBytes returns the snapshot's total downlink bytes.
func (s LedgerSnap) DownlinkBytes() int64 { return sumInt64(s.DownBytes[:]) }

// ComputeUnits returns the snapshot's tally for one computation unit.
func (s LedgerSnap) ComputeUnits(u Unit) int64 { return s.Compute[u] }

// snap copies the ledger's counters.
func (l *Ledger) snap() LedgerSnap {
	var s LedgerSnap
	for k := 0; k < msg.NumKinds; k++ {
		s.UpMsgs[k] = l.upMsgs[k].Value()
		s.UpBytes[k] = l.upBytes[k].Value()
		s.DownMsgs[k] = l.downMsgs[k].Value()
		s.DownBytes[k] = l.downBytes[k].Value()
	}
	for u := 0; u < NumUnits; u++ {
		s.Compute[u] = l.compute[u].Value()
	}
	return s
}

// reset zeroes the ledger in place (counters keep their identity so registry
// registrations survive). Intended for quiescent points, not concurrent use.
func (l *Ledger) reset() {
	for k := 0; k < msg.NumKinds; k++ {
		zero(&l.upMsgs[k])
		zero(&l.upBytes[k])
		zero(&l.downMsgs[k])
		zero(&l.downBytes[k])
	}
	for u := 0; u < NumUnits; u++ {
		zero(&l.compute[u])
	}
}

func zero(c *obs.Counter) { c.Add(-c.Value()) }

func sumCounters(cs []obs.Counter) int64 {
	var t int64
	for i := range cs {
		t += cs[i].Value()
	}
	return t
}

// A Tally is the compact per-entity (cell, station, query, object) traffic
// record: message and byte counts by direction, without the per-kind split.
// Atomic; the zero value is ready.
type Tally struct {
	upMsgs, upBytes, downMsgs, downBytes obs.Counter
}

func (t *Tally) up(bytes int64) {
	t.upMsgs.Add(1)
	t.upBytes.Add(bytes)
}

func (t *Tally) down(bytes, copies int64) {
	t.downMsgs.Add(copies)
	t.downBytes.Add(bytes * copies)
}

func (t *Tally) reset() {
	zero(&t.upMsgs)
	zero(&t.upBytes)
	zero(&t.downMsgs)
	zero(&t.downBytes)
}

func (t *Tally) zeroValued() bool {
	return t.upMsgs.Value() == 0 && t.downMsgs.Value() == 0 &&
		t.upBytes.Value() == 0 && t.downBytes.Value() == 0
}

// TallySnap is a point-in-time copy of one entity's Tally.
type TallySnap struct {
	ID        int64 `json:"id"`
	UpMsgs    int64 `json:"up_msgs"`
	UpBytes   int64 `json:"up_bytes"`
	DownMsgs  int64 `json:"down_msgs"`
	DownBytes int64 `json:"down_bytes"`
}

func (t *Tally) snap(id int64) TallySnap {
	return TallySnap{
		ID:        id,
		UpMsgs:    t.upMsgs.Value(),
		UpBytes:   t.upBytes.Value(),
		DownMsgs:  t.downMsgs.Value(),
		DownBytes: t.downBytes.Value(),
	}
}

// staleBounds are the upper bounds (in steps) of the result-staleness
// histogram buckets; observations above the last bound land in the overflow
// bucket.
var staleBounds = [...]int64{0, 1, 2, 3, 5, 8, 13, 21}

// quality holds the live answer-quality instruments: latest-step precision
// and recall gauges, cumulative true/false positive and false negative
// counters, and the fixed-bucket staleness histogram.
type quality struct {
	precision, recall    obs.Gauge
	tp, fp, fn           obs.Counter
	stale                [len(staleBounds) + 1]obs.Counter
	staleSum, staleCount obs.Counter
}

// An Accountant is the root of the ledger hierarchy for one running system:
// a global transport ledger, a per-shard ledger array plus the router
// ledger, per-cell and per-station tallies, per-query and per-object
// tallies, and the answer-quality instruments.
//
// A nil *Accountant is a valid, disabled accountant: every method is a
// no-op. Configure sizes the fixed scopes and must complete before
// concurrent use; everything else is safe for concurrent use.
type Accountant struct {
	global Ledger
	router Ledger

	// Fixed-size scopes, sized by Configure. Updates to these slices'
	// elements are atomic; the slice headers only change in Configure.
	shards   []Ledger
	cells    []Tally
	stations []Tally

	// nodes are the per-cluster-node ledgers, sized by ConfigureNodes. They
	// mirror the shard level one tier up: the clustered router attributes
	// each dispatched uplink to the node whose tables it mutates, with the
	// router ledger absorbing stale drops and router-handled work, so
	// sum(nodes) + router == global uplinks.
	nodes []Ledger

	mu      sync.RWMutex // guards queries, objects, mode
	queries map[int64]*Tally
	objects map[int64]*Tally
	mode    string

	q quality

	// egress meters the observability downlink: SSE bytes leaving through
	// the stream gateway and bytes entering the history log, charged at
	// the encode boundary like remote frames (DESIGN.md §12/§17).
	// Deliberately outside the Ledger hierarchy — observability egress is
	// not wireless-protocol traffic, so the cross-backend ledger-identity
	// oracle stays unaffected by who happens to be subscribed.
	egress struct {
		gatewayWrites  obs.Counter
		gatewayBytes   obs.Counter
		historyAppends obs.Counter
		historyBytes   obs.Counter
	}
}

// New returns an enabled accountant. Call Configure before use to size the
// per-shard/cell/station scopes (unscoped accounting works without it).
func New() *Accountant {
	return &Accountant{
		queries: make(map[int64]*Tally),
		objects: make(map[int64]*Tally),
	}
}

// Configure (re)allocates the fixed per-shard, per-cell and per-station
// scopes. Zero or negative sizes disable that scope. Not safe to call
// concurrently with accounting updates — call before the system runs.
func (a *Accountant) Configure(numCells, numStations, numShards int) {
	if a == nil {
		return
	}
	if numShards > 0 {
		a.shards = make([]Ledger, numShards)
	} else {
		a.shards = nil
	}
	if numCells > 0 {
		a.cells = make([]Tally, numCells)
	} else {
		a.cells = nil
	}
	if numStations > 0 {
		a.stations = make([]Tally, numStations)
	} else {
		a.stations = nil
	}
}

// ConfigureNodes (re)allocates the per-cluster-node ledgers. Zero or
// negative disables the node scope. Like Configure, call before the system
// runs.
func (a *Accountant) ConfigureNodes(numNodes int) {
	if a == nil {
		return
	}
	if numNodes > 0 {
		a.nodes = make([]Ledger, numNodes)
	} else {
		a.nodes = nil
	}
}

// SetMode records the propagation mode label ("EQP"/"LQP") the run is
// using, so reports can attribute costs to the variant.
func (a *Accountant) SetMode(mode string) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.mode = mode
	a.mu.Unlock()
}

// Mode returns the recorded propagation mode label.
func (a *Accountant) Mode() string {
	if a == nil {
		return ""
	}
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.mode
}

// Uplink charges one uplink message of kind k and the given wire bytes to
// the global ledger. Called at the transport boundary only.
func (a *Accountant) Uplink(k msg.Kind, bytes int) {
	if a == nil {
		return
	}
	a.global.uplink(k, int64(bytes))
}

// Downlink charges a downlink message sent as copies transmissions (one per
// base station; 1 for a unicast) to the global ledger. Called at the
// transport boundary only.
func (a *Accountant) Downlink(k msg.Kind, bytes, copies int) {
	if a == nil {
		return
	}
	a.global.downlink(k, int64(bytes), int64(copies))
}

// ShardUplink charges one uplink to the shard that processed it. An index
// outside the configured range — in particular the router's conventional -1
// for stale drops and router-handled messages — goes to the router ledger,
// preserving sum(shards) + router == global uplinks.
func (a *Accountant) ShardUplink(shard int, k msg.Kind, bytes int) {
	if a == nil {
		return
	}
	if shard < 0 || shard >= len(a.shards) {
		a.router.uplink(k, int64(bytes))
		return
	}
	a.shards[shard].uplink(k, int64(bytes))
}

// NodeUplink charges one uplink to the cluster node that processed it. An
// index outside the configured range — the router's conventional -1 — goes
// to the router ledger, preserving sum(nodes) + router == global uplinks.
func (a *Accountant) NodeUplink(node int, k msg.Kind, bytes int) {
	if a == nil {
		return
	}
	if node < 0 || node >= len(a.nodes) {
		a.router.uplink(k, int64(bytes))
		return
	}
	a.nodes[node].uplink(k, int64(bytes))
}

// CellUp charges one uplink's bytes to the sender's grid cell. Out-of-range
// cells are ignored.
func (a *Accountant) CellUp(cell int32, bytes int) {
	if a == nil {
		return
	}
	if int(cell) < 0 || int(cell) >= len(a.cells) {
		return
	}
	a.cells[cell].up(int64(bytes))
}

// CellDown charges one downlink delivery to a receiving grid cell.
func (a *Accountant) CellDown(cell int32, bytes int) {
	if a == nil {
		return
	}
	if int(cell) < 0 || int(cell) >= len(a.cells) {
		return
	}
	a.cells[cell].down(int64(bytes), 1)
}

// StationUp charges one uplink to the base station that carried it.
func (a *Accountant) StationUp(station int32, bytes int) {
	if a == nil {
		return
	}
	if int(station) < 0 || int(station) >= len(a.stations) {
		return
	}
	a.stations[station].up(int64(bytes))
}

// StationDown charges one broadcast relay to a base station — the per-
// station downlink-bandwidth ledger (§3's asymmetric-channel bottleneck).
func (a *Accountant) StationDown(station int32, bytes int) {
	if a == nil {
		return
	}
	if int(station) < 0 || int(station) >= len(a.stations) {
		return
	}
	a.stations[station].down(int64(bytes), 1)
}

// queryTally returns the get-or-create tally for qid.
func (a *Accountant) queryTally(qid int64) *Tally {
	a.mu.RLock()
	t := a.queries[qid]
	a.mu.RUnlock()
	if t != nil {
		return t
	}
	a.mu.Lock()
	t = a.queries[qid]
	if t == nil {
		t = &Tally{}
		a.queries[qid] = t
	}
	a.mu.Unlock()
	return t
}

// objectTally returns the get-or-create tally for oid.
func (a *Accountant) objectTally(oid int64) *Tally {
	a.mu.RLock()
	t := a.objects[oid]
	a.mu.RUnlock()
	if t != nil {
		return t
	}
	a.mu.Lock()
	t = a.objects[oid]
	if t == nil {
		t = &Tally{}
		a.objects[oid] = t
	}
	a.mu.Unlock()
	return t
}

// QueryUp charges one uplink concerning query qid (protocol-level wire
// size).
func (a *Accountant) QueryUp(qid int64, bytes int) {
	if a == nil {
		return
	}
	a.queryTally(qid).up(int64(bytes))
}

// QueryDown charges one downlink concerning query qid, sent as copies
// transmissions.
func (a *Accountant) QueryDown(qid int64, bytes, copies int) {
	if a == nil {
		return
	}
	a.queryTally(qid).down(int64(bytes), int64(copies))
}

// ObjectUp charges one uplink sent by (or concerning) object oid.
func (a *Accountant) ObjectUp(oid int64, bytes int) {
	if a == nil {
		return
	}
	a.objectTally(oid).up(int64(bytes))
}

// ObjectDown charges one downlink concerning object oid, sent as copies
// transmissions.
func (a *Accountant) ObjectDown(oid int64, bytes, copies int) {
	if a == nil {
		return
	}
	a.objectTally(oid).down(int64(bytes), int64(copies))
}

// Compute charges n computation units of kind u to the global ledger.
func (a *Accountant) Compute(u Unit, n int64) {
	if a == nil {
		return
	}
	a.global.compute[u].Add(n)
}

// QualityStep records one measurement step's answer quality: tp/fp/fn are
// the step's true positives, false positives and false negatives summed
// over all queries. The precision/recall gauges reflect this latest step;
// the counters accumulate, so cumulative precision is Σtp/(Σtp+Σfp) and
// cumulative recall Σtp/(Σtp+Σfn).
func (a *Accountant) QualityStep(tp, fp, fn int64) {
	if a == nil {
		return
	}
	a.q.tp.Add(tp)
	a.q.fp.Add(fp)
	a.q.fn.Add(fn)
	if tp+fp > 0 {
		a.q.precision.Set(float64(tp) / float64(tp+fp))
	} else {
		a.q.precision.Set(1)
	}
	if tp+fn > 0 {
		a.q.recall.Set(float64(tp) / float64(tp+fn))
	} else {
		a.q.recall.Set(1)
	}
}

// ObserveStaleness records one resolved result-staleness episode: the
// number of steps between a ground-truth containment change and the
// server's result set reflecting it.
func (a *Accountant) ObserveStaleness(steps int64) {
	if a == nil {
		return
	}
	i := len(staleBounds)
	for b, bound := range staleBounds {
		if steps <= bound {
			i = b
			break
		}
	}
	a.q.stale[i].Add(1)
	a.q.staleSum.Add(steps)
	a.q.staleCount.Add(1)
}

// Global returns a snapshot of the global transport ledger.
func (a *Accountant) Global() LedgerSnap {
	if a == nil {
		return LedgerSnap{}
	}
	return a.global.snap()
}

// Router returns a snapshot of the router ledger (stale drops and
// router-handled uplinks on the sharded server).
func (a *Accountant) Router() LedgerSnap {
	if a == nil {
		return LedgerSnap{}
	}
	return a.router.snap()
}

// Shards returns snapshots of the per-shard ledgers.
func (a *Accountant) Shards() []LedgerSnap {
	if a == nil {
		return nil
	}
	out := make([]LedgerSnap, len(a.shards))
	for i := range a.shards {
		out[i] = a.shards[i].snap()
	}
	return out
}

// Nodes returns snapshots of the per-cluster-node ledgers.
func (a *Accountant) Nodes() []LedgerSnap {
	if a == nil {
		return nil
	}
	out := make([]LedgerSnap, len(a.nodes))
	for i := range a.nodes {
		out[i] = a.nodes[i].snap()
	}
	return out
}

// Reset zeroes every ledger, tally and quality instrument in place,
// preserving registry registrations and configured scope sizes. Intended
// for quiescent points (e.g. after warmup), like network.Meter.Reset.
// GatewayEgress charges one SSE write of the given byte length to the
// stream-gateway egress meter. Called by the gateway at the encode
// boundary; nil-safe, so it can be installed unconditionally as a cost
// hook.
func (a *Accountant) GatewayEgress(bytes int) {
	if a == nil {
		return
	}
	a.egress.gatewayWrites.Add(1)
	a.egress.gatewayBytes.Add(int64(bytes))
}

// HistoryAppend charges one history-log append of the given byte length
// (record plus any segment header) to the history egress meter. Called by
// the history store at the encode boundary; nil-safe.
func (a *Accountant) HistoryAppend(bytes int) {
	if a == nil {
		return
	}
	a.egress.historyAppends.Add(1)
	a.egress.historyBytes.Add(int64(bytes))
}

func (a *Accountant) Reset() {
	if a == nil {
		return
	}
	zero(&a.egress.gatewayWrites)
	zero(&a.egress.gatewayBytes)
	zero(&a.egress.historyAppends)
	zero(&a.egress.historyBytes)
	a.global.reset()
	a.router.reset()
	for i := range a.shards {
		a.shards[i].reset()
	}
	for i := range a.nodes {
		a.nodes[i].reset()
	}
	for i := range a.cells {
		a.cells[i].reset()
	}
	for i := range a.stations {
		a.stations[i].reset()
	}
	a.mu.Lock()
	a.queries = make(map[int64]*Tally)
	a.objects = make(map[int64]*Tally)
	a.mu.Unlock()
	a.q.precision.Set(0)
	a.q.recall.Set(0)
	zero(&a.q.tp)
	zero(&a.q.fp)
	zero(&a.q.fn)
	for i := range a.q.stale {
		zero(&a.q.stale[i])
	}
	zero(&a.q.staleSum)
	zero(&a.q.staleCount)
}
