package cost

import (
	"testing"

	"mobieyes/internal/msg"
)

// The disabled path is the one every protocol action pays when accounting
// is off: a single nil check, required to stay ≤ ~5 ns/op (see ISSUE 5 /
// BENCH_PR5.json).

func BenchmarkCostUplinkDisabled(b *testing.B) {
	var a *Accountant
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.Uplink(msg.KindVelocityReport, 30)
	}
}

func BenchmarkCostComputeDisabled(b *testing.B) {
	var a *Accountant
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.Compute(UnitContainment, 1)
	}
}

func BenchmarkCostUplinkEnabled(b *testing.B) {
	a := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.Uplink(msg.KindVelocityReport, 30)
	}
}

func BenchmarkCostDownlinkEnabled(b *testing.B) {
	a := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.Downlink(msg.KindVelocityChange, 50, 3)
	}
}

func BenchmarkCostShardUplinkEnabled(b *testing.B) {
	a := New()
	a.Configure(0, 0, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.ShardUplink(i&7, msg.KindVelocityReport, 30)
	}
}

func BenchmarkCostCellUpEnabled(b *testing.B) {
	a := New()
	a.Configure(1024, 0, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.CellUp(int32(i&1023), 30)
	}
}

// Map-backed scope on the hit path (tally already exists).
func BenchmarkCostQueryUpEnabled(b *testing.B) {
	a := New()
	a.QueryUp(1, 30)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.QueryUp(1, 30)
	}
}

func BenchmarkCostSnapshot(b *testing.B) {
	a := populated()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = a.Snapshot()
	}
}
