package cost

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"mobieyes/internal/msg"
)

func newTestMux(a *Accountant) *http.ServeMux {
	mux := http.NewServeMux()
	Attach(mux, a)
	return mux
}

func get(t *testing.T, mux *http.ServeMux, url string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("GET", url, nil)
	rr := httptest.NewRecorder()
	mux.ServeHTTP(rr, req)
	return rr
}

// TestCostsDisabled pins the 404/no-op path when accounting is off.
func TestCostsDisabled(t *testing.T) {
	mux := newTestMux(nil)
	rr := get(t, mux, "/debug/costs")
	if rr.Code != http.StatusNotFound {
		t.Errorf("disabled /debug/costs status = %d, want 404", rr.Code)
	}
	if !strings.Contains(rr.Body.String(), "disabled") {
		t.Errorf("disabled body = %q", rr.Body.String())
	}
}

func populated() *Accountant {
	a := New()
	a.Configure(16, 4, 2)
	a.SetMode("EQP")
	a.Uplink(msg.KindVelocityReport, 30)
	a.Downlink(msg.KindVelocityChange, 50, 2)
	a.CellUp(3, 30)
	a.StationDown(1, 50)
	a.QueryUp(7, 30)
	a.ObjectUp(42, 30)
	return a
}

func TestCostsFullSnapshot(t *testing.T) {
	mux := newTestMux(populated())

	rr := get(t, mux, "/debug/costs")
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); ct != "text/plain; charset=utf-8" {
		t.Errorf("text content type = %q", ct)
	}
	if !strings.Contains(rr.Body.String(), "VelocityReport") {
		t.Errorf("text body missing kind row:\n%s", rr.Body.String())
	}

	rr = get(t, mux, "/debug/costs?format=json")
	if ct := rr.Header().Get("Content-Type"); ct != "application/json; charset=utf-8" {
		t.Errorf("json content type = %q", ct)
	}
	var s Snapshot
	if err := json.Unmarshal(rr.Body.Bytes(), &s); err != nil {
		t.Fatalf("bad json: %v", err)
	}
	if s.Mode != "EQP" || s.Global.UpMsgs != 1 || s.Global.DownMsgs != 2 {
		t.Errorf("snapshot = %+v", s)
	}
	if len(s.Queries) != 1 || s.Queries[0].ID != 7 {
		t.Errorf("queries = %+v", s.Queries)
	}
}

func TestCostsScopeFilters(t *testing.T) {
	mux := newTestMux(populated())

	cases := []struct {
		url, key string
		upMsgs   int64
	}{
		{"/debug/costs?cell=3&format=json", "cell", 1},
		{"/debug/costs?station=1&format=json", "station", 0},
		{"/debug/costs?qid=7&format=json", "qid", 1},
		{"/debug/costs?oid=42&format=json", "oid", 1},
	}
	for _, c := range cases {
		rr := get(t, mux, c.url)
		if rr.Code != http.StatusOK {
			t.Errorf("%s status = %d", c.url, rr.Code)
			continue
		}
		var m map[string]TallySnap
		if err := json.Unmarshal(rr.Body.Bytes(), &m); err != nil {
			t.Errorf("%s: bad json: %v", c.url, err)
			continue
		}
		ts, ok := m[c.key]
		if !ok || ts.UpMsgs != c.upMsgs {
			t.Errorf("%s → %+v, want key %q upMsgs %d", c.url, m, c.key, c.upMsgs)
		}
	}

	// Text variant of a scoped tally.
	rr := get(t, mux, "/debug/costs?station=1")
	if ct := rr.Header().Get("Content-Type"); ct != "text/plain; charset=utf-8" {
		t.Errorf("scoped text content type = %q", ct)
	}
	if !strings.Contains(rr.Body.String(), "station 1") {
		t.Errorf("scoped text body = %q", rr.Body.String())
	}
}

func TestCostsScopeErrors(t *testing.T) {
	mux := newTestMux(populated())
	for _, url := range []string{
		"/debug/costs?cell=99",    // out of configured range
		"/debug/costs?station=9",  // out of configured range
		"/debug/costs?qid=12345",  // no traffic recorded
		"/debug/costs?oid=12345",  // no traffic recorded
	} {
		if rr := get(t, mux, url); rr.Code != http.StatusNotFound {
			t.Errorf("%s status = %d, want 404", url, rr.Code)
		}
	}
	for _, url := range []string{
		"/debug/costs?cell=abc",
		"/debug/costs?qid=-4",
	} {
		if rr := get(t, mux, url); rr.Code != http.StatusBadRequest {
			t.Errorf("%s status = %d, want 400", url, rr.Code)
		}
	}
}
