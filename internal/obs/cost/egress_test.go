package cost

import (
	"strings"
	"testing"

	"mobieyes/internal/obs"
)

// TestEgressBoundary pins the observability-egress charging rule: every
// byte reported at the gateway/history encode boundary lands in the egress
// meters — and nowhere in the transport ledgers, so the cross-backend
// ledger-identity oracle is unaffected by subscriptions.
func TestEgressBoundary(t *testing.T) {
	a := New()
	before := a.global.snap()

	a.GatewayEgress(120)
	a.GatewayEgress(80)
	a.HistoryAppend(41)
	a.HistoryAppend(33)
	a.HistoryAppend(33)

	s := a.Snapshot()
	if s.Egress == nil {
		t.Fatal("no egress section in snapshot")
	}
	want := EgressReport{GatewayWrites: 2, GatewayBytes: 200, HistoryAppends: 3, HistoryBytes: 107}
	if *s.Egress != want {
		t.Fatalf("egress = %+v, want %+v", *s.Egress, want)
	}
	if after := a.global.snap(); after != before {
		t.Fatalf("egress charges leaked into the global transport ledger:\n%+v ->\n%+v", before, after)
	}

	// Text report carries the egress line; JSON carries the section.
	var b strings.Builder
	s.WriteText(&b)
	if !strings.Contains(b.String(), "gateway 2 writes / 200 B") ||
		!strings.Contains(b.String(), "history 3 appends / 107 B") {
		t.Fatalf("text report missing egress line:\n%s", b.String())
	}

	// The Prometheus series exist with per-sink labels.
	reg := obs.NewRegistry()
	a.Instrument(reg)
	var prom strings.Builder
	reg.WritePrometheus(&prom)
	for _, want := range []string{
		`mobieyes_cost_egress_bytes_total{sink="gateway"} 200`,
		`mobieyes_cost_egress_bytes_total{sink="history"} 107`,
		`mobieyes_cost_egress_writes_total{sink="gateway"} 2`,
		`mobieyes_cost_egress_writes_total{sink="history"} 3`,
	} {
		if !strings.Contains(prom.String(), want) {
			t.Fatalf("missing series %q in:\n%s", want, prom.String())
		}
	}

	// Reset zeroes the axis with everything else.
	a.Reset()
	if s := a.Snapshot(); s.Egress != nil {
		t.Fatalf("egress survived Reset: %+v", *s.Egress)
	}

	// Nil accountant: no-op, as required for unconditional hook install.
	var nilA *Accountant
	nilA.GatewayEgress(10)
	nilA.HistoryAppend(10)
}
