package cost

import (
	"strconv"

	"mobieyes/internal/msg"
	"mobieyes/internal/obs"
)

// Instrument registers the accountant's ledgers and quality instruments on
// reg under the mobieyes_cost_* namespace:
//
//	mobieyes_cost_msgs_total{dir,kind}      global transport message counts
//	mobieyes_cost_bytes_total{dir,kind}     global transport wire bytes
//	mobieyes_cost_compute_total{unit}       computation units by kind
//	mobieyes_cost_shard_uplink_msgs{shard}  per-shard uplink attribution
//	                                        (shard="router" for drops)
//	mobieyes_cost_precision / _recall       latest-step answer quality
//	mobieyes_cost_quality_total{outcome}    cumulative tp/fp/fn
//	mobieyes_cost_staleness_total{le}       staleness bucket counts (steps,
//	                                        non-cumulative buckets)
//	mobieyes_cost_staleness_steps_sum       total staleness steps observed
//	mobieyes_cost_egress_writes_total{sink} gateway/history egress writes
//	mobieyes_cost_egress_bytes_total{sink}  gateway/history egress bytes
//
// The registered counters are the live ledger counters — no copying, no
// per-update registry work. Call after Configure so per-shard series exist.
// No-op when a or reg is nil.
func (a *Accountant) Instrument(reg *obs.Registry) {
	if a == nil || reg == nil {
		return
	}
	for k := 0; k < msg.NumKinds; k++ {
		kind := msg.Kind(k).String()
		reg.RegisterCounter("mobieyes_cost_msgs_total",
			"Messages on the wireless medium by direction and kind.",
			&a.global.upMsgs[k], "dir", "up", "kind", kind)
		reg.RegisterCounter("mobieyes_cost_msgs_total",
			"Messages on the wireless medium by direction and kind.",
			&a.global.downMsgs[k], "dir", "down", "kind", kind)
		reg.RegisterCounter("mobieyes_cost_bytes_total",
			"Wire bytes on the wireless medium by direction and kind.",
			&a.global.upBytes[k], "dir", "up", "kind", kind)
		reg.RegisterCounter("mobieyes_cost_bytes_total",
			"Wire bytes on the wireless medium by direction and kind.",
			&a.global.downBytes[k], "dir", "down", "kind", kind)
	}
	for u := 0; u < NumUnits; u++ {
		reg.RegisterCounter("mobieyes_cost_compute_total",
			"Computation units by kind (client and server work).",
			&a.global.compute[u], "unit", Unit(u).String())
	}
	for i := range a.shards {
		sh := &a.shards[i]
		reg.GaugeFunc("mobieyes_cost_shard_uplink_msgs",
			"Uplink messages attributed to each server shard.",
			func() float64 { return float64(sh.UplinkMsgs()) },
			"shard", strconv.Itoa(i))
	}
	reg.GaugeFunc("mobieyes_cost_shard_uplink_msgs",
		"Uplink messages attributed to each server shard.",
		func() float64 { return float64(a.router.UplinkMsgs()) },
		"shard", "router")
	for i := range a.nodes {
		nd := &a.nodes[i]
		reg.GaugeFunc("mobieyes_cost_node_uplink_msgs",
			"Uplink messages attributed to each cluster node.",
			func() float64 { return float64(nd.UplinkMsgs()) },
			"node", strconv.Itoa(i))
	}
	reg.GaugeFunc("mobieyes_cost_precision",
		"Latest-step result-set precision against ground truth.",
		a.q.precision.Value)
	reg.GaugeFunc("mobieyes_cost_recall",
		"Latest-step result-set recall against ground truth.",
		a.q.recall.Value)
	reg.RegisterCounter("mobieyes_cost_quality_total",
		"Cumulative result-set outcomes against ground truth.",
		&a.q.tp, "outcome", "tp")
	reg.RegisterCounter("mobieyes_cost_quality_total",
		"Cumulative result-set outcomes against ground truth.",
		&a.q.fp, "outcome", "fp")
	reg.RegisterCounter("mobieyes_cost_quality_total",
		"Cumulative result-set outcomes against ground truth.",
		&a.q.fn, "outcome", "fn")
	for i := range a.q.stale {
		le := "+Inf"
		if i < len(staleBounds) {
			le = strconv.FormatInt(staleBounds[i], 10)
		}
		reg.RegisterCounter("mobieyes_cost_staleness_total",
			"Result-staleness episodes by duration bucket in steps (non-cumulative buckets).",
			&a.q.stale[i], "le", le)
	}
	reg.RegisterCounter("mobieyes_cost_staleness_steps_sum",
		"Total steps of result staleness observed.", &a.q.staleSum)
	reg.RegisterCounter("mobieyes_cost_egress_writes_total",
		"Observability egress writes by sink (encode-boundary charge).",
		&a.egress.gatewayWrites, "sink", "gateway")
	reg.RegisterCounter("mobieyes_cost_egress_writes_total",
		"Observability egress writes by sink (encode-boundary charge).",
		&a.egress.historyAppends, "sink", "history")
	reg.RegisterCounter("mobieyes_cost_egress_bytes_total",
		"Observability egress bytes by sink (encode-boundary charge).",
		&a.egress.gatewayBytes, "sink", "gateway")
	reg.RegisterCounter("mobieyes_cost_egress_bytes_total",
		"Observability egress bytes by sink (encode-boundary charge).",
		&a.egress.historyBytes, "sink", "history")
}
