package cost

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// Attach mounts the cost-accounting endpoint on mux:
//
//	/debug/costs    the full ledger hierarchy snapshot
//
// Query parameters (all optional):
//
//	cell=N       only the tally of grid cell N
//	station=N    only the tally of base station N
//	qid=N        only the tally of query N
//	oid=N        only the tally of object N
//	format=json  JSON instead of the human-readable text report
//
// Scope filters are exclusive; when several are given the first of
// cell/station/qid/oid wins. An unknown scope answers 404. When a is nil
// (accounting disabled) the endpoint answers 404 so probes can distinguish
// "no accountant" from "no traffic".
func Attach(mux *http.ServeMux, a *Accountant) {
	mux.HandleFunc("/debug/costs", func(w http.ResponseWriter, req *http.Request) {
		if a == nil {
			http.Error(w, "cost accounting disabled", http.StatusNotFound)
			return
		}
		q := req.URL.Query()
		intParam := func(key string) (int64, bool, bool) {
			v := q.Get(key)
			if v == "" {
				return 0, false, true
			}
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil || n < 0 {
				http.Error(w, "bad "+key+" parameter", http.StatusBadRequest)
				return 0, false, false
			}
			return n, true, true
		}
		asJSON := q.Get("format") == "json"
		writeTally := func(t TallySnap, scope string, found bool) {
			if !found {
				http.Error(w, "no such "+scope, http.StatusNotFound)
				return
			}
			if asJSON {
				w.Header().Set("Content-Type", "application/json; charset=utf-8")
				enc := json.NewEncoder(w)
				enc.SetIndent("", "  ")
				enc.Encode(map[string]TallySnap{scope: t})
				return
			}
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			writeTallyText(w, scope, t)
		}

		for _, scope := range []struct {
			key  string
			snap func(int64) (TallySnap, bool)
		}{
			{"cell", func(n int64) (TallySnap, bool) { return a.CellTally(int32(n)) }},
			{"station", func(n int64) (TallySnap, bool) { return a.StationTally(int32(n)) }},
			{"qid", a.QuerySnap},
			{"oid", a.ObjectSnap},
		} {
			n, set, ok := intParam(scope.key)
			if !ok {
				return
			}
			if set {
				t, found := scope.snap(n)
				writeTally(t, scope.key, found)
				return
			}
		}

		s := a.Snapshot()
		if asJSON {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(s)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		s.WriteText(w)
	})
}

func writeTallyText(w http.ResponseWriter, scope string, t TallySnap) {
	b := strconv.AppendInt([]byte(scope+" "), t.ID, 10)
	b = append(b, " up "...)
	b = strconv.AppendInt(b, t.UpMsgs, 10)
	b = append(b, " msgs / "...)
	b = strconv.AppendInt(b, t.UpBytes, 10)
	b = append(b, " B, down "...)
	b = strconv.AppendInt(b, t.DownMsgs, 10)
	b = append(b, " msgs / "...)
	b = strconv.AppendInt(b, t.DownBytes, 10)
	b = append(b, " B\n"...)
	w.Write(b)
}
