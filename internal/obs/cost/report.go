package cost

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"mobieyes/internal/msg"
)

// KindRow is the per-message-kind traffic row of a ledger report.
type KindRow struct {
	Kind      string `json:"kind"`
	UpMsgs    int64  `json:"up_msgs"`
	UpBytes   int64  `json:"up_bytes"`
	DownMsgs  int64  `json:"down_msgs"`
	DownBytes int64  `json:"down_bytes"`
}

// UnitRow is one computation-unit tally of a ledger report.
type UnitRow struct {
	Unit string `json:"unit"`
	N    int64  `json:"n"`
}

// LedgerReport is the JSON-friendly rendering of a LedgerSnap: totals plus
// the non-zero per-kind and per-unit rows.
type LedgerReport struct {
	UpMsgs    int64     `json:"up_msgs"`
	UpBytes   int64     `json:"up_bytes"`
	DownMsgs  int64     `json:"down_msgs"`
	DownBytes int64     `json:"down_bytes"`
	Kinds     []KindRow `json:"kinds,omitempty"`
	Compute   []UnitRow `json:"compute,omitempty"`
}

// Report converts the snapshot to its JSON-friendly form.
func (s LedgerSnap) Report() LedgerReport {
	var r LedgerReport
	for k := 0; k < msg.NumKinds; k++ {
		r.UpMsgs += s.UpMsgs[k]
		r.UpBytes += s.UpBytes[k]
		r.DownMsgs += s.DownMsgs[k]
		r.DownBytes += s.DownBytes[k]
		if s.UpMsgs[k] == 0 && s.DownMsgs[k] == 0 {
			continue
		}
		r.Kinds = append(r.Kinds, KindRow{
			Kind:      msg.Kind(k).String(),
			UpMsgs:    s.UpMsgs[k],
			UpBytes:   s.UpBytes[k],
			DownMsgs:  s.DownMsgs[k],
			DownBytes: s.DownBytes[k],
		})
	}
	for u := 0; u < NumUnits; u++ {
		if s.Compute[u] != 0 {
			r.Compute = append(r.Compute, UnitRow{Unit: Unit(u).String(), N: s.Compute[u]})
		}
	}
	return r
}

// StaleBucket is one bucket of the staleness histogram; LE is the upper
// bound in steps, -1 meaning +Inf (overflow).
type StaleBucket struct {
	LE    int64 `json:"le"`
	Count int64 `json:"count"`
}

// QualityReport is the answer-quality section of a snapshot.
type QualityReport struct {
	// Precision/Recall reflect the latest measured step; CumPrecision and
	// CumRecall are computed over the cumulative tp/fp/fn counters.
	Precision    float64       `json:"precision"`
	Recall       float64       `json:"recall"`
	CumPrecision float64       `json:"cum_precision"`
	CumRecall    float64       `json:"cum_recall"`
	TP           int64         `json:"tp"`
	FP           int64         `json:"fp"`
	FN           int64         `json:"fn"`
	Staleness    []StaleBucket `json:"staleness,omitempty"`
	StaleCount   int64         `json:"stale_count"`
	StaleSum     int64         `json:"stale_sum_steps"`
	StaleMean    float64       `json:"stale_mean_steps"`
}

// Snapshot is the full point-in-time state of an Accountant, shaped for
// JSON exposition (/debug/costs, the admin COSTS command, RunReports).
type Snapshot struct {
	Mode     string         `json:"mode,omitempty"`
	Global   LedgerReport   `json:"global"`
	Router   *LedgerReport  `json:"router,omitempty"`
	Shards   []LedgerReport `json:"shards,omitempty"`
	Nodes    []LedgerReport `json:"nodes,omitempty"`
	Cells    []TallySnap    `json:"cells,omitempty"`
	Stations []TallySnap    `json:"stations,omitempty"`
	Queries  []TallySnap    `json:"queries,omitempty"`
	Objects  []TallySnap    `json:"objects,omitempty"`
	Quality  *QualityReport `json:"quality,omitempty"`
	Egress   *EgressReport  `json:"egress,omitempty"`
}

// EgressReport is the observability-downlink section of a snapshot: bytes
// charged at the stream gateway's SSE encode boundary and at the history
// store's log-append boundary. It lives outside the ledger hierarchy (see
// Accountant.egress).
type EgressReport struct {
	GatewayWrites  int64 `json:"gateway_writes"`
	GatewayBytes   int64 `json:"gateway_bytes"`
	HistoryAppends int64 `json:"history_appends"`
	HistoryBytes   int64 `json:"history_bytes"`
}

// Snapshot captures the whole accountant. Zero-valued cells/stations are
// omitted; queries and objects are ordered by ID. A nil accountant returns
// the zero Snapshot.
func (a *Accountant) Snapshot() Snapshot {
	var s Snapshot
	if a == nil {
		return s
	}
	s.Mode = a.Mode()
	s.Global = a.global.snap().Report()
	if r := a.router.snap(); r != (LedgerSnap{}) {
		rep := r.Report()
		s.Router = &rep
	}
	for i := range a.shards {
		s.Shards = append(s.Shards, a.shards[i].snap().Report())
	}
	for i := range a.nodes {
		s.Nodes = append(s.Nodes, a.nodes[i].snap().Report())
	}
	for i := range a.cells {
		if !a.cells[i].zeroValued() {
			s.Cells = append(s.Cells, a.cells[i].snap(int64(i)))
		}
	}
	for i := range a.stations {
		if !a.stations[i].zeroValued() {
			s.Stations = append(s.Stations, a.stations[i].snap(int64(i)))
		}
	}
	s.Queries = snapMap(a, false)
	s.Objects = snapMap(a, true)
	if q := a.qualityReport(); q.TP != 0 || q.FP != 0 || q.FN != 0 || q.StaleCount != 0 {
		s.Quality = &q
	}
	if e := (EgressReport{
		GatewayWrites:  a.egress.gatewayWrites.Value(),
		GatewayBytes:   a.egress.gatewayBytes.Value(),
		HistoryAppends: a.egress.historyAppends.Value(),
		HistoryBytes:   a.egress.historyBytes.Value(),
	}); e != (EgressReport{}) {
		s.Egress = &e
	}
	return s
}

// snapMap snapshots one of the accountant's per-ID tally maps (queries, or
// objects when objects is true). The map field is read under the lock:
// Reset replaces the maps wholesale, so a caller-evaluated argument would
// race with a concurrent Reset.
func snapMap(a *Accountant, objects bool) []TallySnap {
	a.mu.RLock()
	m := a.queries
	if objects {
		m = a.objects
	}
	ids := make([]int64, 0, len(m))
	tallies := make([]*Tally, 0, len(m))
	for id, t := range m {
		ids = append(ids, id)
		tallies = append(tallies, t)
	}
	a.mu.RUnlock()
	out := make([]TallySnap, len(ids))
	for i := range ids {
		out[i] = tallies[i].snap(ids[i])
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func (a *Accountant) qualityReport() QualityReport {
	q := QualityReport{
		Precision: a.q.precision.Value(),
		Recall:    a.q.recall.Value(),
		TP:        a.q.tp.Value(),
		FP:        a.q.fp.Value(),
		FN:        a.q.fn.Value(),
	}
	if q.TP+q.FP > 0 {
		q.CumPrecision = float64(q.TP) / float64(q.TP+q.FP)
	}
	if q.TP+q.FN > 0 {
		q.CumRecall = float64(q.TP) / float64(q.TP+q.FN)
	}
	for i := range a.q.stale {
		n := a.q.stale[i].Value()
		if n == 0 {
			continue
		}
		le := int64(-1)
		if i < len(staleBounds) {
			le = staleBounds[i]
		}
		q.Staleness = append(q.Staleness, StaleBucket{LE: le, Count: n})
	}
	q.StaleCount = a.q.staleCount.Value()
	q.StaleSum = a.q.staleSum.Value()
	if q.StaleCount > 0 {
		q.StaleMean = float64(q.StaleSum) / float64(q.StaleCount)
	}
	return q
}

// CellTally returns the tally snapshot for one grid cell; ok is false when
// the cell is out of the configured range (or accounting is disabled).
func (a *Accountant) CellTally(cell int32) (TallySnap, bool) {
	if a == nil || int(cell) < 0 || int(cell) >= len(a.cells) {
		return TallySnap{}, false
	}
	return a.cells[cell].snap(int64(cell)), true
}

// StationTally returns the tally snapshot for one base station.
func (a *Accountant) StationTally(station int32) (TallySnap, bool) {
	if a == nil || int(station) < 0 || int(station) >= len(a.stations) {
		return TallySnap{}, false
	}
	return a.stations[station].snap(int64(station)), true
}

// QuerySnap returns the tally snapshot for one query ID; ok is false when
// the query has no recorded traffic.
func (a *Accountant) QuerySnap(qid int64) (TallySnap, bool) {
	if a == nil {
		return TallySnap{}, false
	}
	a.mu.RLock()
	t := a.queries[qid]
	a.mu.RUnlock()
	if t == nil {
		return TallySnap{}, false
	}
	return t.snap(qid), true
}

// ObjectSnap returns the tally snapshot for one object ID.
func (a *Accountant) ObjectSnap(oid int64) (TallySnap, bool) {
	if a == nil {
		return TallySnap{}, false
	}
	a.mu.RLock()
	t := a.objects[oid]
	a.mu.RUnlock()
	if t == nil {
		return TallySnap{}, false
	}
	return t.snap(oid), true
}

// WriteText renders the snapshot as a human-readable report: the global
// per-kind traffic table, compute units, shard attribution, the busiest
// base stations by downlink bytes, and the quality section.
func (s Snapshot) WriteText(w io.Writer) {
	tw := tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
	if s.Mode != "" {
		fmt.Fprintf(tw, "mode\t%s\n", s.Mode)
	}
	fmt.Fprintf(tw, "global\tup %d msgs / %d B\tdown %d msgs / %d B\n",
		s.Global.UpMsgs, s.Global.UpBytes, s.Global.DownMsgs, s.Global.DownBytes)
	for _, k := range s.Global.Kinds {
		fmt.Fprintf(tw, "  kind %s\tup %d / %d B\tdown %d / %d B\n",
			k.Kind, k.UpMsgs, k.UpBytes, k.DownMsgs, k.DownBytes)
	}
	for _, u := range s.Global.Compute {
		fmt.Fprintf(tw, "  compute %s\t%d\n", u.Unit, u.N)
	}
	for i, sh := range s.Shards {
		fmt.Fprintf(tw, "shard %d\tup %d msgs / %d B\n", i, sh.UpMsgs, sh.UpBytes)
	}
	for i, nd := range s.Nodes {
		fmt.Fprintf(tw, "node %d\tup %d msgs / %d B\n", i, nd.UpMsgs, nd.UpBytes)
	}
	if s.Router != nil {
		fmt.Fprintf(tw, "router\tup %d msgs / %d B\n", s.Router.UpMsgs, s.Router.UpBytes)
	}
	if len(s.Stations) > 0 {
		top := append([]TallySnap(nil), s.Stations...)
		sort.Slice(top, func(i, j int) bool { return top[i].DownBytes > top[j].DownBytes })
		if len(top) > 5 {
			top = top[:5]
		}
		for _, st := range top {
			fmt.Fprintf(tw, "station %d\tup %d / %d B\tdown %d / %d B\n",
				st.ID, st.UpMsgs, st.UpBytes, st.DownMsgs, st.DownBytes)
		}
	}
	fmt.Fprintf(tw, "scopes\t%d cells\t%d stations\t%d queries\t%d objects\n",
		len(s.Cells), len(s.Stations), len(s.Queries), len(s.Objects))
	if e := s.Egress; e != nil {
		fmt.Fprintf(tw, "egress\tgateway %d writes / %d B\thistory %d appends / %d B\n",
			e.GatewayWrites, e.GatewayBytes, e.HistoryAppends, e.HistoryBytes)
	}
	if q := s.Quality; q != nil {
		fmt.Fprintf(tw, "quality\tprecision %.4f (cum %.4f)\trecall %.4f (cum %.4f)\n",
			q.Precision, q.CumPrecision, q.Recall, q.CumRecall)
		fmt.Fprintf(tw, "  tp/fp/fn\t%d/%d/%d\n", q.TP, q.FP, q.FN)
		if q.StaleCount > 0 {
			fmt.Fprintf(tw, "  staleness\t%d episodes\tmean %.2f steps\n", q.StaleCount, q.StaleMean)
			for _, b := range q.Staleness {
				le := fmt.Sprintf("%d", b.LE)
				if b.LE < 0 {
					le = "+Inf"
				}
				fmt.Fprintf(tw, "    le=%s\t%d\n", le, b.Count)
			}
		}
	}
	tw.Flush()
}
