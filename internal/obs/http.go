package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"time"
)

// NewMux returns an http.ServeMux exposing the registry and the stdlib
// profiling endpoints:
//
//	/metrics       Prometheus text exposition format
//	/debug/vars    flat JSON snapshot (expvar-style), histograms with p50/p90/p99
//	/healthz       "ok" (liveness)
//	/debug/pprof/  the full net/http/pprof suite (profile, heap, trace, …)
//
// Mount it on a dedicated listener (see ListenAndServe) so profiling and
// scraping never contend with the protocol's own ports.
func NewMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(r.Snapshot())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// RegisterRuntime adds Go runtime gauges (goroutines, heap bytes, completed
// GC cycles) to the registry, computed at scrape time. No-op on nil.
func RegisterRuntime(r *Registry) {
	if r == nil {
		return
	}
	r.GaugeFunc("mobieyes_go_goroutines", "Number of live goroutines.", func() float64 {
		return float64(runtime.NumGoroutine())
	})
	r.GaugeFunc("mobieyes_go_heap_bytes", "Bytes of allocated heap objects.", func() float64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return float64(ms.HeapAlloc)
	})
	r.GaugeFunc("mobieyes_go_gc_total", "Completed GC cycles.", func() float64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return float64(ms.NumGC)
	})
}

// HTTPServer is a metrics/pprof endpoint bound to its own listener.
type HTTPServer struct {
	ln  net.Listener
	srv *http.Server
}

// ListenAndServe starts serving the registry (plus runtime gauges and
// pprof) on addr — ":0" picks a free port, see Addr. The server runs until
// Close.
func ListenAndServe(addr string, r *Registry) (*HTTPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	RegisterRuntime(r)
	h := &HTTPServer{ln: ln, srv: &http.Server{
		Handler:           NewMux(r),
		ReadHeaderTimeout: 10 * time.Second,
	}}
	go h.srv.Serve(ln)
	return h, nil
}

// Addr returns the bound address.
func (h *HTTPServer) Addr() net.Addr { return h.ln.Addr() }

// Close stops the endpoint.
func (h *HTTPServer) Close() error { return h.srv.Close() }
