package obs

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
	"time"

	"mobieyes/internal/obs/trace"
)

// NewMux returns an http.ServeMux exposing the registry and the stdlib
// profiling endpoints:
//
//	/metrics       Prometheus text exposition format
//	/debug/vars    flat JSON snapshot (expvar-style), histograms with p50/p90/p99
//	/healthz       "ok" (liveness)
//	/debug/pprof/  the full net/http/pprof suite (profile, heap, trace, …)
//
// Mount it on a dedicated listener (see ListenAndServe) so profiling and
// scraping never contend with the protocol's own ports.
func NewMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(r.Snapshot())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// HTTPServer is a metrics/pprof endpoint bound to its own listener.
type HTTPServer struct {
	ln    net.Listener
	srv   *http.Server
	ready atomic.Pointer[func() (string, bool)]
}

// SetReady installs fn as the readiness probe backing /readyz. fn returns a
// status line and whether the process is fit to serve; false answers 503.
// With no probe installed (or fn nil) /readyz mirrors /healthz: "ok", 200 —
// so callers without a cluster watchdog get a sane readiness endpoint for
// free. Safe to call at any time, including while serving.
func (h *HTTPServer) SetReady(fn func() (string, bool)) {
	if h == nil {
		return
	}
	if fn == nil {
		h.ready.Store(nil)
		return
	}
	h.ready.Store(&fn)
}

// ListenAndServe starts serving the registry (plus runtime gauges and
// pprof) on addr — ":0" picks a free port, see Addr. The server runs until
// Close.
func ListenAndServe(addr string, r *Registry) (*HTTPServer, error) {
	return ListenAndServeTraced(addr, r, nil)
}

// ListenAndServeTraced is ListenAndServe plus the /debug/events flight-
// recorder endpoint backed by rec (see AttachEvents). A nil rec serves 404
// on /debug/events, so callers can pass their recorder unconditionally.
func ListenAndServeTraced(addr string, r *Registry, rec *trace.Recorder) (*HTTPServer, error) {
	return ListenAndServeWith(addr, r, rec, nil)
}

// ListenAndServeWith is ListenAndServeTraced with a hook: attach (if
// non-nil) runs against the mux before the listener starts serving, so
// callers can mount extra debug endpoints — e.g. cost.Attach for
// /debug/costs — without this package importing theirs.
func ListenAndServeWith(addr string, r *Registry, rec *trace.Recorder, attach func(*http.ServeMux)) (*HTTPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	RegisterRuntime(r)
	mux := NewMux(r)
	AttachEvents(mux, rec)
	h := &HTTPServer{ln: ln}
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		status, ok := "ok", true
		if fn := h.ready.Load(); fn != nil {
			status, ok = (*fn)()
		}
		if !ok {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		io.WriteString(w, status+"\n")
	})
	if attach != nil {
		attach(mux)
	}
	h.srv = &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	go h.srv.Serve(ln)
	return h, nil
}

// Addr returns the bound address.
func (h *HTTPServer) Addr() net.Addr { return h.ln.Addr() }

// Close stops the endpoint.
func (h *HTTPServer) Close() error { return h.srv.Close() }
