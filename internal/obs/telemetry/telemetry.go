// Package telemetry is the cluster telemetry plane: the push side of the
// observability stack for MobiEyes cluster mode (DESIGN.md §14).
//
// PR 2–5 built per-process, pull-only observability — metrics registries,
// the flight-recorder trace ring, the cost accountant. Cluster mode (PR 6)
// spread the system's behavior across worker processes, so a cross-node
// handoff's causal timeline lived split across two workers' rings and the
// router's /metrics scrape showed nothing about remote nodes. This package
// closes the gap with three pieces:
//
//   - A worker-side Collector that snapshots the worker's registry,
//     accountant and recorder into compact Batches — changed metric series
//     (absolute values, so a lost frame self-heals on the next ship),
//     changed cost-ledger entries, and the trace events recorded since the
//     last ship. Batches ride the existing cluster wire tier as
//     msg.NodeTelemetry frames, streamed ahead of op replies and heartbeat
//     answers exactly like NodeDownlink frames, so merge order at the
//     router tracks causal order.
//
//   - A router-side Plane that re-exports worker metrics into the router's
//     obs.Registry under node="N" labels (one /metrics scrape covers the
//     whole cluster), merges worker trace batches into the router's ring
//     (trace IDs are minted at the router and ride the wire, so merged
//     chains stitch into one cross-node timeline), and records per-node
//     heartbeat state (span epoch, span digest, uplink RTT).
//
//   - A Watchdog evaluated on every telemetry round: the router+Σnodes ==
//     global cost identity, span coverage and epoch monotonicity, heartbeat
//     liveness deadlines, and per-node uplink latency SLOs. Violations are
//     latched as structured Alerts, exposed via /debug/cluster (JSON +
//     text), the admin HEALTH command, and a /readyz that degrades from
//     "ok" to "degraded"/"failing".
//
// Like the rest of internal/obs, everything is dependency-free and
// nil-safe: a nil Collector or Plane costs one branch per call site.
package telemetry

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"mobieyes/internal/msg"
	"mobieyes/internal/obs"
	"mobieyes/internal/obs/cost"
	"mobieyes/internal/obs/trace"
)

// batchVersion is the payload format version carried in every encoded
// Batch. The payload is opaque to the wire codec (msg.NodeTelemetry ships
// it as bytes), so this version can evolve independently of ProtoVersion.
const batchVersion = 1

// Cost-entry axes: which counter array of the ledger an entry addresses.
const (
	axisUpMsgs uint8 = iota
	axisUpBytes
	axisDownMsgs
	axisDownBytes
	axisCompute
)

// CostEntry is one changed cost-ledger counter: an axis (uplink/downlink
// msgs/bytes or compute), the index within it (msg.Kind or cost.Unit), and
// the absolute cumulative value. Shipping absolutes keeps the stream
// self-healing: a dropped batch is corrected by the next one.
type CostEntry struct {
	Axis  uint8
	Index uint8
	Value int64
}

// Batch is one decoded telemetry payload: the worker's changed metric
// series, changed cost-ledger entries, and the trace events recorded since
// the previous batch.
type Batch struct {
	Metrics []obs.SeriesPoint
	Costs   []CostEntry
	Events  []trace.Event
}

// SpanDigest hashes a span assignment (epoch, lo, hi) with FNV-1a. Workers
// report it in NodeStatus so the router's watchdog can verify span
// agreement without a table op.
func SpanDigest(epoch uint64, lo, hi uint32) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, w := range [3]uint64{epoch, uint64(lo), uint64(hi)} {
		for i := 0; i < 8; i++ {
			h ^= (w >> (8 * i)) & 0xFF
			h *= prime64
		}
	}
	return h
}

// ---------------------------------------------------------------------------
// Payload codec. Little-endian, length-prefixed strings (u16), bounded
// counts. The payload travels inside a msg.NodeTelemetry frame whose outer
// codec already enforces framing; this codec enforces internal shape.

type benc struct{ b []byte }

func (e *benc) u8(v uint8)   { e.b = append(e.b, v) }
func (e *benc) u16(v uint16) { e.b = binary.LittleEndian.AppendUint16(e.b, v) }
func (e *benc) u64(v uint64) { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *benc) i64(v int64)  { e.u64(uint64(v)) }
func (e *benc) f64(v float64) {
	e.u64(math.Float64bits(v))
}
func (e *benc) str(s string) {
	if len(s) > math.MaxUint16 {
		s = s[:math.MaxUint16]
	}
	e.u16(uint16(len(s)))
	e.b = append(e.b, s...)
}

type bdec struct {
	b   []byte
	off int
	err error
}

func (d *bdec) need(n int) bool {
	if d.err != nil {
		return false
	}
	if d.off+n > len(d.b) {
		d.err = errors.New("telemetry: truncated batch")
		return false
	}
	return true
}

func (d *bdec) u8() uint8 {
	if !d.need(1) {
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *bdec) u16() uint16 {
	if !d.need(2) {
		return 0
	}
	v := binary.LittleEndian.Uint16(d.b[d.off:])
	d.off += 2
	return v
}

func (d *bdec) u64() uint64 {
	if !d.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *bdec) i64() int64   { return int64(d.u64()) }
func (d *bdec) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *bdec) str() string {
	n := int(d.u16())
	if !d.need(n) {
		return ""
	}
	s := string(d.b[d.off : d.off+n])
	d.off += n
	return s
}

// EncodeBatch serializes a batch. An empty batch (no metrics, costs or
// events) encodes to nil — callers must not ship it (the wire codec rejects
// empty telemetry payloads as non-canonical).
func EncodeBatch(b *Batch) []byte {
	if b == nil || (len(b.Metrics) == 0 && len(b.Costs) == 0 && len(b.Events) == 0) {
		return nil
	}
	e := &benc{b: make([]byte, 0, 256)}
	e.u8(batchVersion)
	e.u16(uint16(len(b.Metrics)))
	for _, p := range b.Metrics {
		var kind uint8
		if p.Counter {
			kind = 1
		}
		e.u8(kind)
		e.str(p.Name)
		e.str(p.Help)
		e.u8(uint8(len(p.Labels)))
		for _, l := range p.Labels {
			e.str(l)
		}
		e.f64(p.Value)
	}
	e.u16(uint16(len(b.Costs)))
	for _, c := range b.Costs {
		e.u8(c.Axis)
		e.u8(c.Index)
		e.i64(c.Value)
	}
	e.u16(uint16(len(b.Events)))
	for _, ev := range b.Events {
		e.u64(uint64(ev.Trace))
		e.i64(ev.Nanos)
		e.u8(uint8(ev.Kind))
		e.str(ev.Actor)
		e.i64(ev.OID)
		e.i64(ev.QID)
		e.str(ev.Note)
	}
	return e.b
}

// DecodeBatch parses a telemetry payload. It never panics on hostile input:
// every count is bounded against the remaining bytes before allocation.
func DecodeBatch(p []byte) (*Batch, error) {
	d := &bdec{b: p}
	if v := d.u8(); d.err == nil && v != batchVersion {
		return nil, fmt.Errorf("telemetry: batch version %d, want %d", v, batchVersion)
	}
	var b Batch
	nm := int(d.u16())
	if nm > len(p) { // each metric entry is ≥ 1 byte
		return nil, errors.New("telemetry: metric count exceeds payload")
	}
	for i := 0; i < nm && d.err == nil; i++ {
		var sp obs.SeriesPoint
		sp.Counter = d.u8() == 1
		sp.Name = d.str()
		sp.Help = d.str()
		nl := int(d.u8())
		if nl%2 != 0 {
			if d.err == nil {
				d.err = errors.New("telemetry: odd label count")
			}
			break
		}
		for j := 0; j < nl && d.err == nil; j++ {
			sp.Labels = append(sp.Labels, d.str())
		}
		sp.Value = d.f64()
		b.Metrics = append(b.Metrics, sp)
	}
	nc := int(d.u16())
	if nc > len(p) {
		return nil, errors.New("telemetry: cost count exceeds payload")
	}
	for i := 0; i < nc && d.err == nil; i++ {
		c := CostEntry{Axis: d.u8(), Index: d.u8(), Value: d.i64()}
		if d.err == nil && c.Axis > axisCompute {
			d.err = fmt.Errorf("telemetry: unknown cost axis %d", c.Axis)
		}
		b.Costs = append(b.Costs, c)
	}
	ne := int(d.u16())
	if ne > len(p) {
		return nil, errors.New("telemetry: event count exceeds payload")
	}
	for i := 0; i < ne && d.err == nil; i++ {
		ev := trace.Event{
			Trace: trace.ID(d.u64()),
			Nanos: d.i64(),
			Kind:  trace.Kind(d.u8()),
			Actor: d.str(),
			OID:   d.i64(),
			QID:   d.i64(),
			Note:  d.str(),
		}
		b.Events = append(b.Events, ev)
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(p) {
		return nil, fmt.Errorf("telemetry: %d trailing bytes", len(p)-d.off)
	}
	return &b, nil
}

// costEntries returns the entries of cur that differ from prev, as absolute
// values.
func costEntries(prev, cur cost.LedgerSnap) []CostEntry {
	var out []CostEntry
	for k := 0; k < msg.NumKinds; k++ {
		if cur.UpMsgs[k] != prev.UpMsgs[k] {
			out = append(out, CostEntry{axisUpMsgs, uint8(k), cur.UpMsgs[k]})
		}
		if cur.UpBytes[k] != prev.UpBytes[k] {
			out = append(out, CostEntry{axisUpBytes, uint8(k), cur.UpBytes[k]})
		}
		if cur.DownMsgs[k] != prev.DownMsgs[k] {
			out = append(out, CostEntry{axisDownMsgs, uint8(k), cur.DownMsgs[k]})
		}
		if cur.DownBytes[k] != prev.DownBytes[k] {
			out = append(out, CostEntry{axisDownBytes, uint8(k), cur.DownBytes[k]})
		}
	}
	for u := 0; u < cost.NumUnits; u++ {
		if cur.Compute[u] != prev.Compute[u] {
			out = append(out, CostEntry{axisCompute, uint8(u), cur.Compute[u]})
		}
	}
	return out
}

// applyCostEntries folds entries into a ledger snapshot, ignoring
// out-of-range indices (a newer worker may know more kinds than we do).
func applyCostEntries(snap *cost.LedgerSnap, entries []CostEntry) {
	for _, c := range entries {
		i := int(c.Index)
		switch c.Axis {
		case axisUpMsgs:
			if i < msg.NumKinds {
				snap.UpMsgs[i] = c.Value
			}
		case axisUpBytes:
			if i < msg.NumKinds {
				snap.UpBytes[i] = c.Value
			}
		case axisDownMsgs:
			if i < msg.NumKinds {
				snap.DownMsgs[i] = c.Value
			}
		case axisDownBytes:
			if i < msg.NumKinds {
				snap.DownBytes[i] = c.Value
			}
		case axisCompute:
			if i < cost.NumUnits {
				snap.Compute[i] = c.Value
			}
		}
	}
}
