package telemetry

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mobieyes/internal/msg"
	"mobieyes/internal/obs"
	"mobieyes/internal/obs/cost"
	"mobieyes/internal/obs/trace"
)

// ---------------------------------------------------------------------------
// Payload codec.

func TestBatchRoundTrip(t *testing.T) {
	b := &Batch{
		Metrics: []obs.SeriesPoint{
			{Name: "mobieyes_ops_total", Help: "ops", Counter: true, Value: 42},
			{Name: "mobieyes_table_rows", Help: "rows", Labels: []string{"table", "fot"}, Value: 7.5},
		},
		Costs: []CostEntry{
			{Axis: axisUpMsgs, Index: uint8(msg.KindVelocityReport), Value: 11},
			{Axis: axisCompute, Index: 0, Value: 1 << 40},
		},
		Events: []trace.Event{
			{Trace: 9, Nanos: 123456789, Kind: trace.KindTable, Actor: "node1", OID: 3, QID: 4, Note: "fot insert"},
			{Trace: 9, Nanos: 123456999, Kind: trace.KindBroadcast, Actor: "node1", Note: "region"},
		},
	}
	p := EncodeBatch(b)
	if p == nil {
		t.Fatal("EncodeBatch returned nil for a non-empty batch")
	}
	got, err := DecodeBatch(p)
	if err != nil {
		t.Fatalf("DecodeBatch: %v", err)
	}
	if len(got.Metrics) != 2 || len(got.Costs) != 2 || len(got.Events) != 2 {
		t.Fatalf("round trip lost entries: %+v", got)
	}
	if got.Metrics[0].Name != "mobieyes_ops_total" || !got.Metrics[0].Counter || got.Metrics[0].Value != 42 {
		t.Errorf("metric 0 mismatch: %+v", got.Metrics[0])
	}
	if got.Metrics[1].Labels[0] != "table" || got.Metrics[1].Labels[1] != "fot" {
		t.Errorf("labels lost: %+v", got.Metrics[1])
	}
	if got.Costs[1].Value != 1<<40 {
		t.Errorf("cost value mismatch: %+v", got.Costs[1])
	}
	ev := got.Events[0]
	if ev.Trace != 9 || ev.Nanos != 123456789 || ev.Kind != trace.KindTable ||
		ev.Actor != "node1" || ev.OID != 3 || ev.QID != 4 || ev.Note != "fot insert" {
		t.Errorf("event mismatch: %+v", ev)
	}
}

func TestEncodeBatchEmpty(t *testing.T) {
	if p := EncodeBatch(nil); p != nil {
		t.Errorf("nil batch encoded to %d bytes", len(p))
	}
	if p := EncodeBatch(&Batch{}); p != nil {
		t.Errorf("empty batch encoded to %d bytes", len(p))
	}
}

func TestDecodeBatchHostile(t *testing.T) {
	valid := EncodeBatch(&Batch{Costs: []CostEntry{{Axis: axisUpMsgs, Index: 1, Value: 2}}})
	cases := map[string][]byte{
		"empty":       nil,
		"bad version": {99},
		"truncated":   valid[:len(valid)-3],
		"trailing":    append(append([]byte(nil), valid...), 0xAA),
		// version ok, metric count claims more entries than bytes remain
		"metric count": {batchVersion, 0xFF, 0xFF},
		// one metric with an odd label count
		"odd labels": {batchVersion, 1, 0, 0 /* kind */, 0, 0 /* name */, 0, 0 /* help */, 3},
		// one cost entry with an unknown axis
		"unknown axis": {batchVersion, 0, 0, 1, 0, axisCompute + 1, 0, 0, 0, 0, 0, 0, 0, 0, 0},
	}
	for name, p := range cases {
		if _, err := DecodeBatch(p); err == nil {
			t.Errorf("%s: DecodeBatch accepted hostile payload %v", name, p)
		}
	}
}

func TestSpanDigest(t *testing.T) {
	a := SpanDigest(3, 0, 100)
	if a != SpanDigest(3, 0, 100) {
		t.Fatal("SpanDigest not deterministic")
	}
	for _, other := range []uint64{SpanDigest(4, 0, 100), SpanDigest(3, 1, 100), SpanDigest(3, 0, 101)} {
		if a == other {
			t.Error("SpanDigest collision on adjacent inputs")
		}
	}
}

// ---------------------------------------------------------------------------
// Collector.

func TestCollectorNil(t *testing.T) {
	if c := NewCollector(nil, nil, nil); c != nil {
		t.Fatal("NewCollector(nil,nil,nil) should return nil")
	}
	var c *Collector
	c.NoteOp()
	c.MarkEdge()
	if c.Ops() != 0 {
		t.Error("nil collector Ops != 0")
	}
	if seq, p := c.Collect(true); seq != 0 || p != nil {
		t.Error("nil collector shipped a batch")
	}
}

func TestCollectorCadence(t *testing.T) {
	reg := obs.NewRegistry()
	ctr := reg.Counter("worker_ops_total", "ops")
	c := NewCollector(reg, nil, nil)

	ctr.Add(1)
	if seq, p := c.Collect(false); p != nil {
		t.Fatalf("not due yet but shipped seq %d", seq)
	}
	// Force (heartbeat) ships.
	seq, p := c.Collect(true)
	if p == nil || seq != 1 {
		t.Fatalf("forced collect: seq=%d payload=%v", seq, p != nil)
	}
	// Nothing changed: even forced, nothing to ship.
	if _, p := c.Collect(true); p != nil {
		t.Fatal("shipped an empty delta")
	}
	// An edge makes the next unforced collect due.
	ctr.Add(1)
	c.MarkEdge()
	if _, p := c.Collect(false); p == nil {
		t.Fatal("edge did not make collect due")
	}
	// shipEvery ops make it due.
	ctr.Add(1)
	for i := 0; i < shipEvery; i++ {
		c.NoteOp()
	}
	if _, p := c.Collect(false); p == nil {
		t.Fatal("op cadence did not make collect due")
	}
	if c.Ops() != uint64(shipEvery) {
		t.Errorf("total ops = %d, want %d", c.Ops(), shipEvery)
	}
}

func TestCollectorDeltas(t *testing.T) {
	reg := obs.NewRegistry()
	acct := cost.New()
	rec := trace.NewRecorder(16)
	ctr := reg.Counter("a_total", "a")
	ctr.Add(5)
	acct.Uplink(msg.KindVelocityReport, 100)
	rec.Event(rec.NextID(), trace.KindIngress, "node0", 1, 0, "first")

	c := NewCollector(reg, acct, rec)
	_, p1 := c.Collect(true)
	b1, err := DecodeBatch(p1)
	if err != nil {
		t.Fatal(err)
	}
	if len(b1.Metrics) != 1 || b1.Metrics[0].Value != 5 {
		t.Fatalf("first batch metrics: %+v", b1.Metrics)
	}
	if len(b1.Events) != 1 || b1.Events[0].Note != "first" {
		t.Fatalf("first batch events: %+v", b1.Events)
	}
	var upMsgs, upBytes bool
	for _, ce := range b1.Costs {
		if ce.Index == uint8(msg.KindVelocityReport) {
			switch ce.Axis {
			case axisUpMsgs:
				upMsgs = ce.Value == 1
			case axisUpBytes:
				upBytes = ce.Value == 100
			}
		}
	}
	if !upMsgs || !upBytes {
		t.Fatalf("first batch costs missing uplink entries: %+v", b1.Costs)
	}

	// Only the changed series and new events ship in the second batch.
	ctr.Add(2)
	reg.Counter("b_total", "b").Add(1)
	rec.Event(rec.NextID(), trace.KindTable, "node0", 2, 0, "second")
	_, p2 := c.Collect(true)
	b2, err := DecodeBatch(p2)
	if err != nil {
		t.Fatal(err)
	}
	if len(b2.Metrics) != 2 { // a_total changed, b_total new
		t.Fatalf("second batch metrics: %+v", b2.Metrics)
	}
	for _, sp := range b2.Metrics {
		if sp.Name == "a_total" && sp.Value != 7 {
			t.Errorf("a_total should ship its absolute value 7, got %v", sp.Value)
		}
	}
	if len(b2.Events) != 1 || b2.Events[0].Note != "second" {
		t.Fatalf("watermark failed, events: %+v", b2.Events)
	}
	if len(b2.Costs) != 0 {
		t.Fatalf("unchanged ledger shipped entries: %+v", b2.Costs)
	}
}

// ---------------------------------------------------------------------------
// Plane: merge side.

func planeForTest(t *testing.T, clock *fakeClock) (*Plane, *obs.Registry, *trace.Recorder) {
	t.Helper()
	reg := obs.NewRegistry()
	rec := trace.NewRecorder(64)
	p := New(Config{Metrics: reg, Trace: rec, Now: clock.Now})
	return p, reg, rec
}

type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1000, 0)} }
func (c *fakeClock) Now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func workerBatch(t *testing.T, mutate func(reg *obs.Registry, rec *trace.Recorder)) []byte {
	t.Helper()
	reg := obs.NewRegistry()
	rec := trace.NewRecorder(16)
	mutate(reg, rec)
	c := NewCollector(reg, nil, rec)
	_, p := c.Collect(true)
	if p == nil {
		t.Fatal("worker batch empty")
	}
	return p
}

func TestPlaneReexport(t *testing.T) {
	p, reg, _ := planeForTest(t, newFakeClock())
	batch := workerBatch(t, func(wreg *obs.Registry, _ *trace.Recorder) {
		wreg.Counter("worker_ops_total", "ops").Add(10)
		wreg.Gauge("worker_rows", "rows", "node", "stale").Set(3)
	})
	if err := p.Apply(1, 1, batch); err != nil {
		t.Fatal(err)
	}
	if v := reg.Counter("worker_ops_total", "ops", "node", "1").Value(); v != 10 {
		t.Errorf("re-exported counter = %d, want 10", v)
	}
	// The worker-side node="stale" label is replaced, not duplicated.
	if v := reg.Gauge("worker_rows", "rows", "node", "1").Value(); v != 3 {
		t.Errorf("re-exported gauge = %v, want 3", v)
	}

	// Second batch: counter advanced to 25 → delta 15 imported.
	b2 := EncodeBatch(&Batch{Metrics: []obs.SeriesPoint{
		{Name: "worker_ops_total", Help: "ops", Counter: true, Value: 25}}})
	if err := p.Apply(1, 2, b2); err != nil {
		t.Fatal(err)
	}
	if v := reg.Counter("worker_ops_total", "ops", "node", "1").Value(); v != 25 {
		t.Errorf("after delta import = %d, want 25", v)
	}

	// Worker restart: absolute value drops to 4 → re-import from zero.
	b3 := EncodeBatch(&Batch{Metrics: []obs.SeriesPoint{
		{Name: "worker_ops_total", Help: "ops", Counter: true, Value: 4}}})
	if err := p.Apply(1, 1, b3); err != nil {
		t.Fatal(err)
	}
	if v := reg.Counter("worker_ops_total", "ops", "node", "1").Value(); v != 29 {
		t.Errorf("after restart re-import = %d, want 29 (25+4)", v)
	}

	// A second node's series lands under its own label.
	if err := p.Apply(2, 1, batch); err != nil {
		t.Fatal(err)
	}
	if v := reg.Counter("worker_ops_total", "ops", "node", "2").Value(); v != 10 {
		t.Errorf("node 2 counter = %d, want 10", v)
	}
}

func TestPlaneTraceStitch(t *testing.T) {
	p, _, rec := planeForTest(t, newFakeClock())
	// The router minted trace 7 and recorded its ingress; node 1 continues
	// the chain remotely and ships the continuation.
	rec.Event(7, trace.KindIngress, "router", 5, 0, "uplink in")
	batch := workerBatch(t, func(_ *obs.Registry, wrec *trace.Recorder) {
		wrec.Event(7, trace.KindTable, "node1", 5, 0, "fot update")
	})
	if err := p.Apply(1, 1, batch); err != nil {
		t.Fatal(err)
	}
	evs := rec.Events(trace.Filter{Trace: 7})
	if len(evs) != 2 {
		t.Fatalf("stitched chain has %d events, want 2: %+v", len(evs), evs)
	}
	if evs[0].Actor != "router" || evs[1].Actor != "node1" {
		t.Errorf("stitched order wrong: %+v", evs)
	}
	if causal := rec.Causal(5, 0); len(causal) != 2 {
		t.Errorf("Causal(oid=5) sees %d events, want 2", len(causal))
	}
}

func TestPlaneApplyRejectsGarbage(t *testing.T) {
	p, _, _ := planeForTest(t, newFakeClock())
	if err := p.Apply(1, 1, []byte{99, 1, 2}); err == nil {
		t.Fatal("Apply accepted a garbage payload")
	}
}

// ---------------------------------------------------------------------------
// Watchdog.

func healthyView() View {
	return View{Epoch: 2, Cells: 100, Spans: []SpanView{
		{Node: 0, Lo: 0, Hi: 50, Live: true},
		{Node: 1, Lo: 50, Hi: 100, Live: true},
	}}
}

func statusFor(node uint32, v View) msg.NodeStatus {
	s := v.Spans[node]
	return msg.NodeStatus{Node: node, Epoch: v.Epoch, Lo: uint32(s.Lo), Hi: uint32(s.Hi),
		Digest: SpanDigest(v.Epoch, uint32(s.Lo), uint32(s.Hi))}
}

func TestWatchdogHealthy(t *testing.T) {
	clock := newFakeClock()
	p, _, _ := planeForTest(t, clock)
	v := healthyView()
	p.ExpectNode(0)
	p.ExpectNode(1)
	p.ApplyStatus(statusFor(0, v))
	p.ApplyStatus(statusFor(1, v))
	if alerts := p.Round(v); len(alerts) != 0 {
		t.Fatalf("healthy cluster raised alerts: %v", alerts)
	}
	if s := p.HealthStatus(); s != HealthOK {
		t.Errorf("health = %s, want ok", s)
	}
	if s, ok := p.Ready(); !ok || s != HealthOK {
		t.Errorf("Ready() = %s,%v", s, ok)
	}
}

func TestWatchdogLedgerIdentity(t *testing.T) {
	clock := newFakeClock()
	reg := obs.NewRegistry()
	acct := cost.New()
	acct.ConfigureNodes(2)
	p := New(Config{Metrics: reg, Costs: acct, Now: clock.Now})
	v := healthyView()

	// Balanced: every global uplink charge matched by a node (or router) one.
	acct.Uplink(msg.KindVelocityReport, 40)
	acct.NodeUplink(0, msg.KindVelocityReport, 40)
	acct.Uplink(msg.KindCellChangeReport, 60)
	acct.NodeUplink(-1, msg.KindCellChangeReport, 60) // router-handled
	if alerts := p.Round(v); len(alerts) != 0 {
		t.Fatalf("balanced ledgers raised alerts: %v", alerts)
	}

	// Skew: a node charge without the global one.
	acct.NodeUplink(1, msg.KindContainmentReport, 30)
	alerts := p.Round(v)
	if len(alerts) != 1 || alerts[0].Check != CheckLedgerIdentity {
		t.Fatalf("skewed ledger alerts = %v", alerts)
	}
	if alerts[0].Node != -1 || alerts[0].Severity != SeverityCritical {
		t.Errorf("identity alert shape: %+v", alerts[0])
	}
	if s, ok := p.Ready(); ok || s != HealthFailing {
		t.Errorf("Ready() = %s,%v, want failing,false", s, ok)
	}

	// Repair the skew: the alert resolves.
	acct.Uplink(msg.KindContainmentReport, 30)
	if alerts := p.Round(v); len(alerts) != 0 {
		t.Fatalf("repaired ledger still alerting: %v", alerts)
	}
}

func TestWatchdogSpanCoverage(t *testing.T) {
	p, _, _ := planeForTest(t, newFakeClock())
	v := View{Epoch: 1, Cells: 100, Spans: []SpanView{
		{Node: 0, Lo: 0, Hi: 40, Live: true},
		{Node: 1, Lo: 50, Hi: 100, Live: true}, // gap [40,50)
	}}
	alerts := p.Round(v)
	if len(alerts) != 1 || alerts[0].Check != CheckSpanCoverage {
		t.Fatalf("gap alerts = %v", alerts)
	}
	// A dead node holding cells is also a violation.
	v2 := View{Epoch: 1, Cells: 100, Spans: []SpanView{
		{Node: 0, Lo: 0, Hi: 100, Live: true},
		{Node: 1, Lo: 50, Hi: 100, Live: false},
	}}
	alerts = p.Round(v2)
	if len(alerts) != 1 || alerts[0].Check != CheckSpanCoverage {
		t.Fatalf("dead-span alerts = %v", alerts)
	}
}

func TestWatchdogEpochAndDigest(t *testing.T) {
	p, _, _ := planeForTest(t, newFakeClock())
	v := healthyView()

	// Node 0 reports a stale epoch after having seen a newer one: regression.
	p.ApplyStatus(msg.NodeStatus{Node: 0, Epoch: 2, Lo: 0, Hi: 50, Digest: SpanDigest(2, 0, 50)})
	p.ApplyStatus(msg.NodeStatus{Node: 0, Epoch: 1, Lo: 0, Hi: 50, Digest: SpanDigest(1, 0, 50)})
	alerts := p.Round(v)
	if len(alerts) != 1 || alerts[0].Check != CheckEpoch || alerts[0].Node != 0 {
		t.Fatalf("epoch regression alerts = %v", alerts)
	}

	// Node 0 caught up but disagrees on the span bounds: digest mismatch.
	p.ApplyStatus(msg.NodeStatus{Node: 0, Epoch: 2, Lo: 0, Hi: 49, Digest: SpanDigest(2, 0, 49)})
	alerts = p.Round(v)
	if len(alerts) != 1 || alerts[0].Check != CheckSpanDigest {
		t.Fatalf("digest alerts = %v", alerts)
	}

	// Agreement clears it.
	p.ApplyStatus(statusFor(0, v))
	if alerts := p.Round(v); len(alerts) != 0 {
		t.Fatalf("agreed node still alerting: %v", alerts)
	}
}

func TestWatchdogLiveness(t *testing.T) {
	clock := newFakeClock()
	p, _, _ := planeForTest(t, clock)
	v := healthyView()
	p.ExpectNode(0)
	p.ExpectNode(1)
	p.ApplyStatus(statusFor(0, v))
	p.ApplyStatus(statusFor(1, v))
	if alerts := p.Round(v); len(alerts) != 0 {
		t.Fatalf("fresh nodes alerting: %v", alerts)
	}

	// Node 1 goes quiet past the deadline; the alert latches and counts
	// consecutive rounds.
	clock.advance(DefaultHeartbeatDeadline / 2)
	p.ApplyStatus(statusFor(0, v))
	clock.advance(DefaultHeartbeatDeadline/2 + time.Second)
	p.ApplyStatus(statusFor(0, v))
	alerts := p.Round(v)
	if len(alerts) != 1 || alerts[0].Check != CheckHeartbeat || alerts[0].Node != 1 {
		t.Fatalf("stale alerts = %v", alerts)
	}
	alerts = p.Round(v)
	if alerts[0].Rounds != 2 {
		t.Errorf("latched alert rounds = %d, want 2", alerts[0].Rounds)
	}
	if s := p.HealthStatus(); s != HealthFailing {
		t.Errorf("health = %s, want failing", s)
	}

	// A probe error upgrades the diagnosis to node-unreachable.
	p.NoteProbeError(1, errors.New("dial tcp: connection refused"))
	alerts = p.Round(v)
	if len(alerts) != 1 || alerts[0].Check != CheckUnreachable {
		t.Fatalf("unreachable alerts = %v", alerts)
	}

	// The node comes back: telemetry arrival clears the probe error and
	// refreshes lastSeen; everything resolves.
	p.ApplyStatus(statusFor(1, v))
	if alerts := p.Round(v); len(alerts) != 0 {
		t.Fatalf("recovered node still alerting: %v", alerts)
	}
	if s := p.HealthStatus(); s != HealthOK {
		t.Errorf("health after recovery = %s, want ok", s)
	}
}

func TestWatchdogRTTSLO(t *testing.T) {
	clock := newFakeClock()
	p, _, _ := planeForTest(t, clock)
	v := healthyView()
	p.ExpectNode(0)
	p.ApplyStatus(statusFor(0, v))
	p.ObserveRTT(0, DefaultRTTSLO+time.Millisecond)
	alerts := p.Round(v)
	if len(alerts) != 1 || alerts[0].Check != CheckUplinkSLO || alerts[0].Severity != SeverityWarn {
		t.Fatalf("SLO alerts = %v", alerts)
	}
	// A warning degrades readiness but keeps serving.
	if s, ok := p.Ready(); !ok || s != HealthDegraded {
		t.Errorf("Ready() = %s,%v, want degraded,true", s, ok)
	}
	p.ObserveRTT(0, time.Millisecond)
	if alerts := p.Round(v); len(alerts) != 0 {
		t.Fatalf("fast node still alerting: %v", alerts)
	}
}

// TestWatchdogRecoveryDegrades pins the recovery-aware health contract:
// while a dead node's crash recovery is in progress, its critical alert
// degrades health instead of failing it (readiness keeps serving), the
// alert auto-resolves on the round that observes the node leaving the live
// set, and NoteRecoveryDone counts the completed recovery.
func TestWatchdogRecoveryDegrades(t *testing.T) {
	clock := newFakeClock()
	p, reg, _ := planeForTest(t, clock)
	v := healthyView()
	p.ExpectNode(0)
	p.ExpectNode(1)
	p.ApplyStatus(statusFor(0, v))
	p.ApplyStatus(statusFor(1, v))
	if alerts := p.Round(v); len(alerts) != 0 {
		t.Fatalf("healthy cluster raised alerts: %v", alerts)
	}

	// Node 1 goes silent past the deadline: critical heartbeat alert, the
	// cluster is failing.
	clock.advance(DefaultHeartbeatDeadline + time.Second)
	p.ApplyStatus(statusFor(0, v))
	alerts := p.Round(v)
	if len(alerts) != 1 || alerts[0].Check != CheckHeartbeat || alerts[0].Node != 1 {
		t.Fatalf("stale alerts = %v", alerts)
	}
	if s, ok := p.Ready(); ok || s != HealthFailing {
		t.Fatalf("Ready() = %s,%v, want failing,false", s, ok)
	}

	// The router declares the node dead and starts replaying its journal:
	// the same alert now only degrades health, and /readyz keeps serving.
	p.NoteRecoveryStart(1)
	if s, ok := p.Ready(); !ok || s != HealthDegraded {
		t.Errorf("Ready() during recovery = %s,%v, want degraded,true", s, ok)
	}
	snap := p.Snapshot()
	if len(snap.Nodes) != 2 || !snap.Nodes[1].Recovering {
		t.Errorf("snapshot does not mark node 1 recovering: %+v", snap.Nodes)
	}
	var sb strings.Builder
	p.WriteHealth(&sb)
	if !strings.Contains(sb.String(), "node 1 recovering") {
		t.Errorf("WriteHealth missing recovering state: %q", sb.String())
	}

	// The post-fence round: node 1 has left the live set, its span folded
	// into node 0. The heartbeat alert resolves on its own — liveness only
	// applies to live spans.
	fenced := View{Epoch: 3, Cells: 100, Spans: []SpanView{
		{Node: 0, Lo: 0, Hi: 100, Live: true},
		{Node: 1, Lo: 0, Hi: 0, Live: false},
	}}
	p.ApplyStatus(statusFor(0, fenced))
	if alerts := p.Round(fenced); len(alerts) != 0 {
		t.Fatalf("fenced node still alerting: %v", alerts)
	}

	// Replay converged: the recovery completes and is counted.
	p.NoteRecoveryDone(1)
	if s := p.HealthStatus(); s != HealthOK {
		t.Errorf("health after recovery = %s, want ok", s)
	}
	if n := p.Recoveries(); n != 1 {
		t.Errorf("Recoveries() = %d, want 1", n)
	}
	if v := reg.Counter("mobieyes_cluster_recoveries_total", "").Value(); v != 1 {
		t.Errorf("recoveries_total = %d, want 1", v)
	}
	if snap := p.Snapshot(); snap.Recoveries != 1 || snap.Nodes[1].Recovering {
		t.Errorf("post-recovery snapshot = %+v", snap)
	}
}

func TestNilPlane(t *testing.T) {
	var p *Plane
	p.ExpectNode(0)
	if err := p.Apply(0, 1, []byte{1, 2}); err != nil {
		t.Error("nil plane Apply should be a no-op")
	}
	p.ApplyStatus(msg.NodeStatus{})
	p.ObserveRTT(0, time.Second)
	p.NoteProbeError(0, errors.New("x"))
	p.NoteHandoff(0, 1)
	if a := p.Round(View{}); a != nil {
		t.Error("nil plane Round returned alerts")
	}
	if a := p.Alerts(); a != nil {
		t.Error("nil plane Alerts returned alerts")
	}
	if s := p.HealthStatus(); s != HealthOK {
		t.Error("nil plane health != ok")
	}
	if s, ok := p.Ready(); !ok || s != HealthOK {
		t.Error("nil plane not ready")
	}
	if s := p.Snapshot(); s.Health != HealthOK {
		t.Error("nil plane snapshot unhealthy")
	}
}

// ---------------------------------------------------------------------------
// Snapshot, text view, HTTP endpoint.

func TestSnapshotAndHTTP(t *testing.T) {
	clock := newFakeClock()
	p, _, _ := planeForTest(t, clock)
	v := healthyView()
	p.ExpectNode(0)
	p.ApplyStatus(statusFor(0, v))
	batch := workerBatch(t, func(wreg *obs.Registry, _ *trace.Recorder) {
		wreg.Counter("x_total", "x").Add(1)
	})
	if err := p.Apply(0, 1, batch); err != nil {
		t.Fatal(err)
	}
	p.Round(v)

	snap := p.Snapshot()
	if snap.Health != HealthOK || snap.Epoch != 2 || len(snap.Nodes) != 2 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if n := snap.Nodes[0]; !n.Expected || n.Batches != 1 {
		t.Errorf("node 0 snapshot = %+v", n)
	}

	var sb strings.Builder
	p.WriteHealth(&sb)
	out := sb.String()
	if !strings.HasPrefix(out, "health ok epoch 2") {
		t.Errorf("WriteHealth header: %q", out)
	}
	if !strings.Contains(out, "node 0 live cells [0,50)") {
		t.Errorf("WriteHealth missing node line: %q", out)
	}

	mux := http.NewServeMux()
	Attach(mux, p)
	rr := httptest.NewRecorder()
	mux.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/cluster?format=json", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("/debug/cluster status %d", rr.Code)
	}
	var got Snapshot
	if err := json.Unmarshal(rr.Body.Bytes(), &got); err != nil {
		t.Fatalf("JSON view: %v", err)
	}
	if got.Health != HealthOK || len(got.Nodes) != 2 {
		t.Errorf("JSON snapshot = %+v", got)
	}

	rr = httptest.NewRecorder()
	mux.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/cluster", nil))
	if !strings.HasPrefix(rr.Body.String(), "health ok") {
		t.Errorf("text view: %q", rr.Body.String())
	}

	// A nil plane serves 404, like the other optional debug endpoints.
	mux2 := http.NewServeMux()
	Attach(mux2, nil)
	rr = httptest.NewRecorder()
	mux2.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/cluster", nil))
	if rr.Code != http.StatusNotFound {
		t.Errorf("nil plane endpoint status %d, want 404", rr.Code)
	}
}

func TestPlaneCounters(t *testing.T) {
	clock := newFakeClock()
	p, reg, _ := planeForTest(t, clock)
	batch := workerBatch(t, func(_ *obs.Registry, wrec *trace.Recorder) {
		wrec.Event(1, trace.KindNote, "node0", 0, 0, "a")
		wrec.Event(1, trace.KindNote, "node0", 0, 0, "b")
	})
	if err := p.Apply(0, 1, batch); err != nil {
		t.Fatal(err)
	}
	p.Round(healthyView())
	if v := reg.Counter("mobieyes_cluster_telemetry_batches_total", "").Value(); v != 1 {
		t.Errorf("batches_total = %d", v)
	}
	if v := reg.Counter("mobieyes_cluster_telemetry_events_total", "").Value(); v != 2 {
		t.Errorf("events_total = %d", v)
	}
	if v := reg.Counter("mobieyes_cluster_watchdog_rounds_total", "").Value(); v != 1 {
		t.Errorf("rounds_total = %d", v)
	}
}
