package telemetry

import (
	"sync"

	"mobieyes/internal/obs"
	"mobieyes/internal/obs/cost"
	"mobieyes/internal/obs/trace"
)

// shipEvery is the default op interval between periodic ships: a worker
// that applied this many table ops since its last batch ships on the next
// reply, even without an edge. Heartbeats always ship.
const shipEvery = 64

// maxEventsPerBatch bounds one batch's trace section; a burst beyond it
// ships across consecutive batches (the collector keeps its watermark).
const maxEventsPerBatch = 256

// A Collector is the worker-side half of the telemetry plane: it watches
// the worker's registry, accountant and flight recorder and emits delta
// Batches when due. All methods are safe for concurrent use and no-ops on a
// nil receiver, so the worker's serve loop threads it unconditionally.
//
// Delta semantics: metric series ship with absolute values but only when
// changed since the last ship; cost entries likewise. Trace events ship
// exactly once each, watermarked by the recorder's sequence numbers (events
// overwritten in the ring before a ship are lost, like any flight-recorder
// history). A lost batch therefore under-reports traces but self-heals
// metrics and costs on the next ship.
type Collector struct {
	reg  *obs.Registry
	acct *cost.Accountant
	rec  *trace.Recorder

	mu       sync.Mutex
	seq      uint64 // last shipped batch sequence
	ops      uint64 // table ops since last ship
	totalOps uint64 // table ops ever (reported in NodeStatus)
	edge     bool   // handoff/assign edge since last ship
	last     map[string]float64
	lastCost cost.LedgerSnap
	evMark   uint64 // recorder sequence watermark
}

// NewCollector returns a collector over the worker's observability
// surfaces; any of them may be nil. Returns nil (a no-op collector) when
// all three are nil — there would be nothing to ship.
func NewCollector(reg *obs.Registry, acct *cost.Accountant, rec *trace.Recorder) *Collector {
	if reg == nil && acct == nil && rec == nil {
		return nil
	}
	return &Collector{reg: reg, acct: acct, rec: rec, last: make(map[string]float64)}
}

// NoteOp records one applied table op; every shipEvery ops make the next
// Collect(false) due.
func (c *Collector) NoteOp() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.ops++
	c.totalOps++
	c.mu.Unlock()
}

// Ops returns the total table ops noted (for NodeStatus).
func (c *Collector) Ops() uint64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.totalOps
}

// MarkEdge makes the next Collect(false) due regardless of op count — the
// hook for handoff and span-reassignment edges, whose state changes the
// router's watchdog wants promptly.
func (c *Collector) MarkEdge() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.edge = true
	c.mu.Unlock()
}

// Collect assembles the next batch if one is due (force makes it due, as on
// a heartbeat). It returns the batch sequence number and the encoded
// payload, or (0, nil) when nothing is due or nothing changed. The
// sequence increases by one per non-empty batch.
func (c *Collector) Collect(force bool) (uint64, []byte) {
	if c == nil {
		return 0, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if !force && !c.edge && c.ops < shipEvery {
		return 0, nil
	}

	var b Batch
	// Changed metric series, absolute values.
	for _, p := range c.reg.Export() {
		k := p.Key()
		if v, ok := c.last[k]; ok && v == p.Value {
			continue
		}
		c.last[k] = p.Value
		b.Metrics = append(b.Metrics, p)
	}
	// Changed cost-ledger entries of the worker's global ledger.
	if c.acct != nil {
		cur := c.acct.Global()
		b.Costs = costEntries(c.lastCost, cur)
		c.lastCost = cur
	}
	// Trace events past the watermark, oldest first, bounded per batch.
	if c.rec != nil {
		evs := c.rec.Events(trace.Filter{})
		for _, ev := range evs {
			if ev.Seq <= c.evMark {
				continue
			}
			c.evMark = ev.Seq
			b.Events = append(b.Events, ev)
			if len(b.Events) >= maxEventsPerBatch {
				break
			}
		}
	}

	payload := EncodeBatch(&b)
	c.ops, c.edge = 0, false
	if payload == nil {
		return 0, nil
	}
	c.seq++
	return c.seq, payload
}
