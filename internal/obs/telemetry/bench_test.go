package telemetry

import (
	"testing"
	"time"

	"mobieyes/internal/msg"
	"mobieyes/internal/obs"
	"mobieyes/internal/obs/cost"
	"mobieyes/internal/obs/trace"
)

// benchBatch builds a representative batch: a dozen metric series, a handful
// of changed cost entries, a burst of trace events.
func benchBatch() *Batch {
	b := &Batch{}
	names := []string{"mobieyes_uplink_messages_total", "mobieyes_downlink_messages_total",
		"mobieyes_fot_rows", "mobieyes_sqt_rows", "mobieyes_rqi_rows", "mobieyes_ops_total"}
	for i, n := range names {
		b.Metrics = append(b.Metrics, obs.SeriesPoint{
			Name: n, Help: "bench", Counter: i%2 == 0,
			Labels: []string{"table", "fot"}, Value: float64(i * 1000),
		})
	}
	for k := 0; k < 6; k++ {
		b.Costs = append(b.Costs, CostEntry{Axis: axisUpMsgs, Index: uint8(k), Value: int64(k * 17)})
		b.Costs = append(b.Costs, CostEntry{Axis: axisUpBytes, Index: uint8(k), Value: int64(k * 900)})
	}
	for i := 0; i < 32; i++ {
		b.Events = append(b.Events, trace.Event{
			Trace: trace.ID(i%4 + 1), Nanos: int64(i), Kind: trace.KindTable,
			Actor: "node1", OID: int64(i), Note: "fot update",
		})
	}
	return b
}

// BenchmarkEncodeBatch measures the worker-side delta-encode cost per batch.
func BenchmarkEncodeBatch(b *testing.B) {
	batch := benchBatch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if EncodeBatch(batch) == nil {
			b.Fatal("empty payload")
		}
	}
}

// BenchmarkDecodeBatch measures the router-side parse cost per batch.
func BenchmarkDecodeBatch(b *testing.B) {
	p := EncodeBatch(benchBatch())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeBatch(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCollectIdle measures the per-reply overhead of a collector with
// nothing due — the cost every worker op reply pays.
func BenchmarkCollectIdle(b *testing.B) {
	reg := obs.NewRegistry()
	reg.Counter("x_total", "x").Add(1)
	c := NewCollector(reg, nil, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, p := c.Collect(false); p != nil {
			b.Fatal("unexpected ship")
		}
	}
}

// BenchmarkCollectHeartbeat measures the full forced collect + encode path —
// the per-heartbeat telemetry cost on a worker with live counters.
func BenchmarkCollectHeartbeat(b *testing.B) {
	reg := obs.NewRegistry()
	ctr := reg.Counter("x_total", "x")
	acct := cost.New()
	c := NewCollector(reg, acct, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctr.Add(1)
		acct.Uplink(msg.KindVelocityReport, 64)
		if _, p := c.Collect(true); p == nil {
			b.Fatal("nothing shipped")
		}
	}
}

// BenchmarkPlaneApply measures the router-side merge cost per pushed batch.
func BenchmarkPlaneApply(b *testing.B) {
	p := New(Config{Metrics: obs.NewRegistry(), Trace: trace.NewRecorder(1024)})
	payload := EncodeBatch(benchBatch())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Apply(1, uint64(i+1), payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWatchdogRound measures one full invariant evaluation round on a
// healthy four-node cluster with live ledgers.
func BenchmarkWatchdogRound(b *testing.B) {
	acct := cost.New()
	acct.ConfigureNodes(4)
	for n := 0; n < 4; n++ {
		for k := 0; k < 4; k++ {
			acct.Uplink(msg.Kind(k), 64)
			acct.NodeUplink(n, msg.Kind(k), 64)
		}
	}
	clock := time.Unix(1000, 0)
	p := New(Config{Metrics: obs.NewRegistry(), Costs: acct,
		Now: func() time.Time { return clock }})
	v := View{Epoch: 3, Cells: 400}
	for n := 0; n < 4; n++ {
		lo, hi := n*100, (n+1)*100
		v.Spans = append(v.Spans, SpanView{Node: n, Lo: lo, Hi: hi, Live: true})
		p.ExpectNode(n)
		p.ApplyStatus(msg.NodeStatus{Node: uint32(n), Epoch: 3, Lo: uint32(lo), Hi: uint32(hi),
			Digest: SpanDigest(3, uint32(lo), uint32(hi))})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if alerts := p.Round(v); len(alerts) != 0 {
			b.Fatalf("healthy round alerted: %v", alerts)
		}
	}
}
