package telemetry

import (
	"encoding/json"
	"net/http"
)

// Attach mounts the cluster telemetry endpoint on mux:
//
//	/debug/cluster    health, active alerts, and per-node telemetry state
//
// Query parameters:
//
//	format=json    JSON Snapshot instead of the human-readable text report
//
// When p is nil (no telemetry plane — serial or sharded mode) the endpoint
// answers 404, so probes can distinguish "no cluster" from "healthy
// cluster", matching cost.Attach's convention for /debug/costs.
func Attach(mux *http.ServeMux, p *Plane) {
	mux.HandleFunc("/debug/cluster", func(w http.ResponseWriter, req *http.Request) {
		if p == nil {
			http.Error(w, "cluster telemetry disabled", http.StatusNotFound)
			return
		}
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(p.Snapshot())
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		p.WriteHealth(w)
	})
}
