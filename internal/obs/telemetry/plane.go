package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"

	"mobieyes/internal/msg"
	"mobieyes/internal/obs"
	"mobieyes/internal/obs/cost"
	"mobieyes/internal/obs/trace"
)

// Default watchdog thresholds. Both are generous: the plane's job is to
// catch dead or wedged nodes and broken invariants, not to flap on a busy
// scheduler.
const (
	// DefaultHeartbeatDeadline is how stale an expected node's last
	// telemetry may be before the watchdog raises heartbeat-stale.
	DefaultHeartbeatDeadline = 5 * time.Second
	// DefaultRTTSLO is the per-node uplink (heartbeat round-trip) latency
	// above which the watchdog raises a warning.
	DefaultRTTSLO = 250 * time.Millisecond
)

// Severity levels for alerts.
const (
	SeverityWarn     = "warn"
	SeverityCritical = "critical"
)

// Watchdog check names, one per invariant.
const (
	CheckLedgerIdentity = "ledger-identity"
	CheckSpanCoverage   = "span-coverage"
	CheckEpoch          = "epoch-regression"
	CheckSpanDigest     = "span-digest"
	CheckHeartbeat      = "heartbeat-stale"
	CheckUnreachable    = "node-unreachable"
	CheckUplinkSLO      = "uplink-slo"
)

// An Alert is one latched watchdog violation: which invariant failed, on
// which node (-1 = cluster-wide), how bad, since when, and for how many
// consecutive rounds. Alerts clear automatically when the check passes.
type Alert struct {
	Check      string `json:"check"`
	Node       int    `json:"node"` // -1 = cluster-wide
	Severity   string `json:"severity"`
	Detail     string `json:"detail"`
	SinceNanos int64  `json:"since_nanos"`
	Rounds     int64  `json:"rounds"`
}

func (a Alert) String() string {
	where := "cluster"
	if a.Node >= 0 {
		where = "node " + strconv.Itoa(a.Node)
	}
	return fmt.Sprintf("[%s] %s %s: %s (%d rounds)", a.Severity, where, a.Check, a.Detail, a.Rounds)
}

// SpanView is the router's authoritative view of one node's assignment,
// passed into every watchdog round.
type SpanView struct {
	Node int
	Lo   int
	Hi   int
	Live bool
}

// View is the router's authoritative cluster state for one watchdog round.
type View struct {
	Epoch uint64
	Cells int
	Spans []SpanView
}

// Config configures a Plane. Every field is optional.
type Config struct {
	// Metrics is the router registry worker series are re-exported into
	// (and the plane's own counters registered on).
	Metrics *obs.Registry
	// Trace is the router ring worker trace batches merge into.
	Trace *trace.Recorder
	// Costs is the router's accountant, checked for the router+Σnodes ==
	// global uplink identity each round.
	Costs *cost.Accountant
	// HeartbeatDeadline / RTTSLO override the watchdog thresholds
	// (defaults above); Now overrides the clock (tests).
	HeartbeatDeadline time.Duration
	RTTSLO            time.Duration
	Now               func() time.Time
}

// nodeState is everything the plane knows about one worker node.
type nodeState struct {
	expected bool      // wired for telemetry: liveness deadlines apply
	lastSeen time.Time // last telemetry or status arrival (or ExpectNode time)
	lastSeq  uint64    // last applied batch sequence
	epoch    uint64    // last reported span epoch
	maxEpoch uint64    // high-water epoch (regression detection)
	lo, hi   uint32
	digest   uint64
	ops      uint64
	rtt      time.Duration
	probeErr error
	costs    cost.LedgerSnap // worker-reported ledger (worker-side view)
	batches  int64
	events   int64
}

// importedSeries tracks one re-exported worker counter for delta import.
type importedSeries struct {
	ctr  *obs.Counter
	last float64
}

// A Plane is the router-side telemetry aggregator and invariant watchdog.
// All methods are safe for concurrent use and no-ops on a nil receiver.
type Plane struct {
	reg  *obs.Registry
	rec  *trace.Recorder
	acct *cost.Accountant
	now  func() time.Time

	hbDeadline time.Duration
	rttSLO     time.Duration

	batchesTotal *obs.Counter
	eventsTotal  *obs.Counter
	roundsTotal  *obs.Counter
	raisedTotal  *obs.Counter
	resolvTotal  *obs.Counter

	mu       sync.Mutex
	nodes    map[int]*nodeState
	imported map[string]*importedSeries // key: node|series key
	alerts   map[string]*Alert          // key: check|node
	rounds   int64
	lastView View
	hasView  bool
	handoffs int64
	// recovering marks nodes whose crash-recovery replay is in progress:
	// their node-scoped critical alerts degrade health instead of failing
	// it (the router is actively healing, not broken). recoveries counts
	// completed recoveries.
	recovering map[int]bool
	recoveries int64

	recoveriesTotal *obs.Counter
}

// New returns a plane over the router's observability surfaces.
func New(cfg Config) *Plane {
	p := &Plane{
		reg:        cfg.Metrics,
		rec:        cfg.Trace,
		acct:       cfg.Costs,
		now:        cfg.Now,
		hbDeadline: cfg.HeartbeatDeadline,
		rttSLO:     cfg.RTTSLO,
		nodes:      make(map[int]*nodeState),
		imported:   make(map[string]*importedSeries),
		alerts:     make(map[string]*Alert),
		recovering: make(map[int]bool),
	}
	if p.now == nil {
		p.now = time.Now
	}
	if p.hbDeadline <= 0 {
		p.hbDeadline = DefaultHeartbeatDeadline
	}
	if p.rttSLO <= 0 {
		p.rttSLO = DefaultRTTSLO
	}
	p.batchesTotal = p.reg.Counter("mobieyes_cluster_telemetry_batches_total",
		"Telemetry batches received from worker nodes.")
	p.eventsTotal = p.reg.Counter("mobieyes_cluster_telemetry_events_total",
		"Worker trace events merged into the router ring.")
	p.roundsTotal = p.reg.Counter("mobieyes_cluster_watchdog_rounds_total",
		"Invariant watchdog evaluation rounds.")
	p.raisedTotal = p.reg.Counter("mobieyes_cluster_alerts_raised_total",
		"Watchdog alerts raised (transitions into failing).")
	p.resolvTotal = p.reg.Counter("mobieyes_cluster_alerts_resolved_total",
		"Watchdog alerts resolved (transitions back to passing).")
	p.recoveriesTotal = p.reg.Counter("mobieyes_cluster_recoveries_total",
		"Crash recoveries completed: journaled focal state replayed into survivors.")
	p.reg.GaugeFunc("mobieyes_cluster_alerts_active",
		"Watchdog alerts currently failing.", func() float64 {
			p.mu.Lock()
			defer p.mu.Unlock()
			return float64(len(p.alerts))
		})
	return p
}

// node returns (creating) the state record for a node. p.mu held.
func (p *Plane) node(i int) *nodeState {
	st, ok := p.nodes[i]
	if !ok {
		st = &nodeState{}
		p.nodes[i] = st
	}
	return st
}

// ExpectNode declares that a node ships telemetry over the wire, so the
// heartbeat liveness deadline applies to it. In-process nodes are never
// expected — their state is directly visible to the router.
func (p *Plane) ExpectNode(i int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	st := p.node(i)
	st.expected = true
	if st.lastSeen.IsZero() {
		st.lastSeen = p.now()
	}
}

// Apply decodes and merges one pushed telemetry batch from a worker:
// metrics re-export under node="N", cost-ledger merge, trace-batch merge
// into the router ring.
func (p *Plane) Apply(node int, seq uint64, payload []byte) error {
	if p == nil {
		return nil
	}
	b, err := DecodeBatch(payload)
	if err != nil {
		return err
	}
	label := strconv.Itoa(node)
	p.mu.Lock()
	st := p.node(node)
	st.lastSeen = p.now()
	st.lastSeq = seq
	st.batches++
	st.events += int64(len(b.Events))
	st.probeErr = nil
	applyCostEntries(&st.costs, b.Costs)

	type counterDelta struct {
		ctr   *obs.Counter
		delta int64
	}
	var deltas []counterDelta
	var gauges []obs.SeriesPoint
	for _, sp := range b.Metrics {
		if sp.Counter {
			key := label + "|" + sp.Key()
			is, ok := p.imported[key]
			if !ok {
				is = &importedSeries{ctr: p.reg.Counter(sp.Name, sp.Help, nodeLabels(sp.Labels, label)...)}
				p.imported[key] = is
			}
			d := sp.Value - is.last
			if d < 0 { // worker restarted: re-import from zero
				d = sp.Value
			}
			is.last = sp.Value
			if d != 0 {
				deltas = append(deltas, counterDelta{is.ctr, int64(d)})
			}
		} else {
			gauges = append(gauges, sp)
		}
	}
	p.mu.Unlock()

	// Registry mutations happen outside p.mu: the registry has its own
	// lock, and GaugeFunc closures (alerts_active) take p.mu at scrape.
	for _, d := range deltas {
		d.ctr.Add(d.delta)
	}
	for _, sp := range gauges {
		p.reg.Gauge(sp.Name, sp.Help, nodeLabels(sp.Labels, label)...).Set(sp.Value)
	}
	for _, ev := range b.Events {
		p.rec.Record(ev)
	}
	p.batchesTotal.Add(1)
	p.eventsTotal.Add(int64(len(b.Events)))
	return nil
}

// nodeLabels returns the point's labels with any worker-side "node" pair
// replaced by this node's label.
func nodeLabels(labels []string, node string) []string {
	out := make([]string, 0, len(labels)+2)
	for i := 0; i+1 < len(labels); i += 2 {
		if labels[i] == "node" {
			continue
		}
		out = append(out, labels[i], labels[i+1])
	}
	return append(out, "node", node)
}

// ApplyStatus records a worker's heartbeat answer.
func (p *Plane) ApplyStatus(st msg.NodeStatus) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	ns := p.node(int(st.Node))
	ns.lastSeen = p.now()
	ns.epoch = st.Epoch
	if st.Epoch > ns.maxEpoch {
		ns.maxEpoch = st.Epoch
	}
	ns.lo, ns.hi = st.Lo, st.Hi
	ns.digest = st.Digest
	ns.ops = st.Ops
	ns.probeErr = nil
}

// ObserveRTT records one node's heartbeat round-trip time — the plane's
// uplink latency signal for the SLO check.
func (p *Plane) ObserveRTT(node int, d time.Duration) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.node(node).rtt = d
}

// NoteProbeError records that a heartbeat or exchange with a node failed;
// the next round raises node-unreachable. Cleared by any successful
// telemetry arrival.
func (p *Plane) NoteProbeError(node int, err error) {
	if p == nil || err == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.node(node).probeErr = err
}

// NoteHandoff records one cross-node focal handoff edge (the router calls
// it from the handoff path; the TCP tier's workers additionally mark their
// collectors so the slice's table events ship promptly).
func (p *Plane) NoteHandoff(src, dst int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.handoffs++
	p.mu.Unlock()
}

// NoteRecoveryStart marks a node's crash recovery as in progress: the
// router has fenced the dead node and is replaying its journaled focal
// state into survivors. Until NoteRecoveryDone, node-scoped critical
// alerts degrade health rather than failing it.
func (p *Plane) NoteRecoveryStart(node int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.recovering[node] = true
	p.mu.Unlock()
}

// NoteRecoveryDone marks a node's crash recovery as complete: the replay
// converged and the dead node's alerts have been resolved by the round
// that observed it leaving the live set.
func (p *Plane) NoteRecoveryDone(node int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	delete(p.recovering, node)
	p.recoveries++
	p.mu.Unlock()
	p.recoveriesTotal.Add(1)
}

// Recoveries returns the number of completed crash recoveries.
func (p *Plane) Recoveries() int64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.recoveries
}

// uplink kinds the router dispatches into nodes; the ledger identity is
// checked per kind over message counts (byte totals differ legitimately:
// the transport charges wire bytes to the global ledger, the router charges
// protocol Size() to node ledgers).
var identityKinds = [...]msg.Kind{
	msg.KindVelocityReport, msg.KindCellChangeReport, msg.KindContainmentReport,
	msg.KindGroupContainmentReport, msg.KindFocalInfoResponse, msg.KindDepartureReport,
}

// Round evaluates every watchdog invariant against the router's
// authoritative view, updating the latched alert set, and returns the
// currently active alerts (sorted). Call it on every telemetry round: the
// periodic heartbeat tick and handoff/rebalance edges.
func (p *Plane) Round(v View) []Alert {
	if p == nil {
		return nil
	}
	now := p.now()
	p.mu.Lock()
	defer p.mu.Unlock()
	p.rounds++
	p.lastView, p.hasView = v, true

	failing := make(map[string]Alert)
	fail := func(check string, node int, sev, detail string) {
		failing[check+"|"+strconv.Itoa(node)] = Alert{Check: check, Node: node, Severity: sev, Detail: detail}
	}

	// 1. Cost identity: router + Σnodes == global uplink message counts,
	// per dispatched kind.
	if p.acct != nil {
		if nodes := p.acct.Nodes(); len(nodes) > 0 {
			global, router := p.acct.Global(), p.acct.Router()
			for _, k := range identityKinds {
				sum := router.UpMsgs[k]
				for _, n := range nodes {
					sum += n.UpMsgs[k]
				}
				if sum != global.UpMsgs[k] {
					fail(CheckLedgerIdentity, -1, SeverityCritical,
						fmt.Sprintf("%v uplinks: router+Σnodes=%d, global=%d", k, sum, global.UpMsgs[k]))
					break
				}
			}
		}
	}

	// 2. Span coverage: live spans partition [0, Cells); dead spans empty.
	if v.Cells > 0 && len(v.Spans) > 0 {
		spans := append([]SpanView(nil), v.Spans...)
		sort.Slice(spans, func(i, j int) bool { return spans[i].Lo < spans[j].Lo })
		covered, ok, detail := 0, true, ""
		for _, s := range spans {
			if !s.Live {
				if s.Lo != s.Hi {
					ok, detail = false, fmt.Sprintf("dead node %d holds span [%d,%d)", s.Node, s.Lo, s.Hi)
				}
				continue
			}
			if s.Lo != covered {
				ok, detail = false, fmt.Sprintf("gap or overlap at cell %d (node %d starts at %d)", covered, s.Node, s.Lo)
				break
			}
			covered = s.Hi
		}
		if ok && covered != v.Cells {
			ok, detail = false, fmt.Sprintf("spans cover %d of %d cells", covered, v.Cells)
		}
		if !ok {
			fail(CheckSpanCoverage, -1, SeverityCritical, detail)
		}
	}

	for _, s := range v.Spans {
		st, seen := p.nodes[s.Node]
		if !seen {
			continue
		}
		// 3. Epoch monotonicity: a node may lag the router (assignment in
		// flight) but must never regress or run ahead.
		if st.epoch != 0 {
			if st.epoch < st.maxEpoch {
				fail(CheckEpoch, s.Node, SeverityCritical,
					fmt.Sprintf("reported epoch %d after %d", st.epoch, st.maxEpoch))
			} else if st.epoch > v.Epoch {
				fail(CheckEpoch, s.Node, SeverityCritical,
					fmt.Sprintf("reported epoch %d ahead of router epoch %d", st.epoch, v.Epoch))
			}
			// 4. Span digest agreement, only when the node is caught up.
			if s.Live && st.epoch == v.Epoch {
				want := SpanDigest(v.Epoch, uint32(s.Lo), uint32(s.Hi))
				if st.digest != want {
					fail(CheckSpanDigest, s.Node, SeverityCritical,
						fmt.Sprintf("span digest %#x, router expects %#x for [%d,%d)@%d",
							st.digest, want, s.Lo, s.Hi, v.Epoch))
				}
			}
		}
		// 5. Heartbeat liveness, for live nodes wired over the wire.
		if s.Live && st.expected {
			if st.probeErr != nil {
				fail(CheckUnreachable, s.Node, SeverityCritical, st.probeErr.Error())
			} else if age := now.Sub(st.lastSeen); age > p.hbDeadline {
				fail(CheckHeartbeat, s.Node, SeverityCritical,
					fmt.Sprintf("no telemetry for %v (deadline %v)", age.Round(time.Millisecond), p.hbDeadline))
			}
			// 6. Uplink latency SLO.
			if st.rtt > p.rttSLO {
				fail(CheckUplinkSLO, s.Node, SeverityWarn,
					fmt.Sprintf("heartbeat RTT %v exceeds SLO %v", st.rtt.Round(time.Microsecond), p.rttSLO))
			}
		}
	}

	// Latch/refresh/resolve.
	for key, a := range failing {
		if cur, ok := p.alerts[key]; ok {
			cur.Rounds++
			cur.Detail = a.Detail
			cur.Severity = a.Severity
		} else {
			na := a
			na.SinceNanos = now.UnixNano()
			na.Rounds = 1
			p.alerts[key] = &na
			p.raisedTotal.Add(1)
		}
	}
	for key := range p.alerts {
		if _, still := failing[key]; !still {
			delete(p.alerts, key)
			p.resolvTotal.Add(1)
		}
	}
	p.roundsTotal.Add(1)
	return p.activeLocked()
}

// activeLocked returns the active alerts sorted by (severity desc, check,
// node). p.mu held.
func (p *Plane) activeLocked() []Alert {
	out := make([]Alert, 0, len(p.alerts))
	for _, a := range p.alerts {
		out = append(out, *a)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Severity != out[j].Severity {
			return out[i].Severity == SeverityCritical
		}
		if out[i].Check != out[j].Check {
			return out[i].Check < out[j].Check
		}
		return out[i].Node < out[j].Node
	})
	return out
}

// Alerts returns the currently active alerts, sorted.
func (p *Plane) Alerts() []Alert {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.activeLocked()
}

// Health classifications.
const (
	HealthOK       = "ok"
	HealthDegraded = "degraded"
	HealthFailing  = "failing"
)

// healthLocked classifies the active alert set. p.mu held.
//
// A critical alert scoped to a node whose crash recovery is in progress
// counts as degraded, not failing: the router is actively healing that
// node's state, and /readyz flipping to 503 mid-replay would eject the
// router from load balancing exactly when it is about to converge.
func (p *Plane) healthLocked() string {
	h := HealthOK
	for _, a := range p.alerts {
		if a.Severity == SeverityCritical && !(a.Node >= 0 && p.recovering[a.Node]) {
			return HealthFailing
		}
		h = HealthDegraded
	}
	return h
}

// HealthStatus returns "ok", "degraded" or "failing" ("ok" on nil).
func (p *Plane) HealthStatus() string {
	if p == nil {
		return HealthOK
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.healthLocked()
}

// Ready implements the /readyz contract: the status line plus whether the
// cluster is still fit to serve (critical alerts mean it is not).
func (p *Plane) Ready() (string, bool) {
	s := p.HealthStatus()
	return s, s != HealthFailing
}

// NodeSnapshot is one node's state in the JSON /debug/cluster view.
type NodeSnapshot struct {
	Node        int     `json:"node"`
	Live        bool    `json:"live"`
	Expected    bool    `json:"expected"`
	Lo          int     `json:"lo"`
	Hi          int     `json:"hi"`
	Epoch       uint64  `json:"epoch"`
	Ops         uint64  `json:"ops"`
	Batches     int64   `json:"batches"`
	Events      int64   `json:"events"`
	AgeSeconds  float64 `json:"age_seconds"`
	RTTMillis   float64 `json:"rtt_millis"`
	UplinkMsgs  int64   `json:"uplink_msgs"`  // worker-reported ledger
	UplinkBytes int64   `json:"uplink_bytes"` // worker-reported ledger
	ProbeError  string  `json:"probe_error,omitempty"`
	Recovering  bool    `json:"recovering,omitempty"`
}

// Snapshot is the full JSON /debug/cluster view.
type Snapshot struct {
	Health     string         `json:"health"`
	Epoch      uint64         `json:"epoch"`
	Rounds     int64          `json:"rounds"`
	Handoffs   int64          `json:"handoffs"`
	Recoveries int64          `json:"recoveries"`
	Alerts     []Alert        `json:"alerts"`
	Nodes      []NodeSnapshot `json:"nodes"`
}

// Snapshot returns the plane's current state for the /debug/cluster
// endpoint and the admin HEALTH command.
func (p *Plane) Snapshot() Snapshot {
	if p == nil {
		return Snapshot{Health: HealthOK}
	}
	now := p.now()
	p.mu.Lock()
	defer p.mu.Unlock()
	s := Snapshot{
		Health:     p.healthLocked(),
		Rounds:     p.rounds,
		Handoffs:   p.handoffs,
		Recoveries: p.recoveries,
		Alerts:     p.activeLocked(),
	}
	if p.hasView {
		s.Epoch = p.lastView.Epoch
		for _, sp := range p.lastView.Spans {
			ns := NodeSnapshot{Node: sp.Node, Live: sp.Live, Lo: sp.Lo, Hi: sp.Hi,
				Recovering: p.recovering[sp.Node]}
			if st, ok := p.nodes[sp.Node]; ok {
				ns.Expected = st.expected
				ns.Epoch = st.epoch
				ns.Ops = st.ops
				ns.Batches = st.batches
				ns.Events = st.events
				if !st.lastSeen.IsZero() {
					ns.AgeSeconds = now.Sub(st.lastSeen).Seconds()
				}
				ns.RTTMillis = float64(st.rtt) / float64(time.Millisecond)
				ns.UplinkMsgs = st.costs.UplinkMsgs()
				ns.UplinkBytes = st.costs.UplinkBytes()
				if st.probeErr != nil {
					ns.ProbeError = st.probeErr.Error()
				}
			}
			s.Nodes = append(s.Nodes, ns)
		}
	} else {
		// No round yet: report what the plane has heard from, by node.
		var ids []int
		for i := range p.nodes {
			ids = append(ids, i)
		}
		sort.Ints(ids)
		for _, i := range ids {
			st := p.nodes[i]
			ns := NodeSnapshot{Node: i, Live: true, Expected: st.expected,
				Epoch: st.epoch, Ops: st.ops, Batches: st.batches, Events: st.events}
			if !st.lastSeen.IsZero() {
				ns.AgeSeconds = now.Sub(st.lastSeen).Seconds()
			}
			s.Nodes = append(s.Nodes, ns)
		}
	}
	return s
}

// WriteHealth writes the admin HEALTH view: one status line, then one line
// per node, then any active alerts.
func (p *Plane) WriteHealth(w io.Writer) {
	s := p.Snapshot()
	fmt.Fprintf(w, "health %s epoch %d rounds %d handoffs %d recoveries %d\n",
		s.Health, s.Epoch, s.Rounds, s.Handoffs, s.Recoveries)
	for _, n := range s.Nodes {
		state := "live"
		if !n.Live {
			state = "dead"
		}
		if n.Recovering {
			state = "recovering"
		}
		fmt.Fprintf(w, "node %d %s cells [%d,%d) epoch %d ops %d batches %d events %d age %.1fs rtt %.2fms",
			n.Node, state, n.Lo, n.Hi, n.Epoch, n.Ops, n.Batches, n.Events, n.AgeSeconds, n.RTTMillis)
		if n.ProbeError != "" {
			fmt.Fprintf(w, " fault %q", n.ProbeError)
		}
		fmt.Fprintln(w)
	}
	for _, a := range s.Alerts {
		fmt.Fprintln(w, a.String())
	}
}
