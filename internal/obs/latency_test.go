package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"mobieyes/internal/obs/trace"
)

// recordChain writes one ingress→table→broadcast→deliver chain into rec.
func recordChain(rec *trace.Recorder) trace.ID {
	tid := rec.NextID()
	rec.Event(tid, trace.KindIngress, "test", 1, 0, "")
	rec.Event(tid, trace.KindTable, "test", 1, 0, "")
	rec.Event(tid, trace.KindBroadcast, "test", 1, 0, "")
	rec.Event(tid, trace.KindDeliver, "test", 1, 0, "")
	return tid
}

// TestLatencyViewWatermark: each trace folds in exactly once, no matter how
// often Collect runs — repeated /debug/latency scrapes must not
// double-count.
func TestLatencyViewWatermark(t *testing.T) {
	rec := trace.NewRecorder(1024)
	lv := NewLatencyView(rec)
	recordChain(rec)
	recordChain(rec)
	lv.Collect()
	lv.Collect()
	lv.Collect()
	snap := lv.Snapshot() // collects once more
	if snap.Traces != 2 {
		t.Fatalf("traces = %d after repeated collects, want 2", snap.Traces)
	}
	if snap.E2E.Count != 2 {
		t.Fatalf("e2e count = %d, want 2", snap.E2E.Count)
	}
	recordChain(rec)
	if snap = lv.Snapshot(); snap.Traces != 3 {
		t.Fatalf("traces = %d after a new chain, want 3", snap.Traces)
	}
}

// TestLatencyViewDiscard: Discard consumes pending traces without folding
// them in — the loadgen's warmup boundary.
func TestLatencyViewDiscard(t *testing.T) {
	rec := trace.NewRecorder(1024)
	lv := NewLatencyView(rec)
	recordChain(rec)
	recordChain(rec)
	lv.Discard()
	recordChain(rec)
	if snap := lv.Snapshot(); snap.Traces != 1 {
		t.Fatalf("traces = %d after discard, want 1", snap.Traces)
	}
}

// TestLatencyViewPartialAndNil: chains missing stages count as partial;
// nil receivers and nil recorders are inert.
func TestLatencyViewPartialAndNil(t *testing.T) {
	rec := trace.NewRecorder(1024)
	lv := NewLatencyView(rec)
	tid := rec.NextID()
	rec.Event(tid, trace.KindIngress, "test", 1, 0, "")
	rec.Event(tid, trace.KindTable, "test", 1, 0, "")
	snap := lv.Snapshot()
	if snap.Traces != 1 || snap.Partial != 1 {
		t.Fatalf("traces=%d partial=%d, want 1/1", snap.Traces, snap.Partial)
	}

	var nilLV *LatencyView
	nilLV.Collect()
	nilLV.Discard()
	if s := nilLV.Snapshot(); s.Traces != 0 {
		t.Fatal("nil view reported traces")
	}
	if err := NewLatencyView(nil).WriteText(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
}

// TestLatencyViewInstrument: the view's histograms surface in a registry
// snapshot under the stage-labeled series after folding.
func TestLatencyViewInstrument(t *testing.T) {
	rec := trace.NewRecorder(1024)
	lv := NewLatencyView(rec)
	reg := NewRegistry()
	lv.Instrument(reg)
	recordChain(rec)
	lv.Collect()
	snap := reg.Snapshot()
	e2e, ok := snap["mobieyes_latency_e2e_seconds"].(map[string]any)
	if !ok {
		t.Fatalf("e2e histogram missing from registry: %v", snap)
	}
	if e2e["count"].(int64) != 1 {
		t.Fatalf("e2e count = %v, want 1", e2e["count"])
	}
	if _, ok := snap[`mobieyes_latency_stage_seconds{stage="table"}`]; !ok {
		t.Fatalf("stage=table series missing from registry")
	}
}

// TestAttachLatencyHTTP: /debug/latency serves the text table and the JSON
// snapshot, and answers 404 when tracing is disabled.
func TestAttachLatencyHTTP(t *testing.T) {
	rec := trace.NewRecorder(1024)
	lv := NewLatencyView(rec)
	recordChain(rec)
	mux := http.NewServeMux()
	AttachLatency(mux, lv)

	rr := httptest.NewRecorder()
	mux.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/latency", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("text status = %d", rr.Code)
	}
	body := rr.Body.String()
	for _, want := range []string{"traces 1", "dispatch", "table", "fanout", "deliver", "e2e"} {
		if !strings.Contains(body, want) {
			t.Errorf("text body missing %q:\n%s", want, body)
		}
	}

	rr = httptest.NewRecorder()
	mux.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/latency?format=json", nil))
	var snap LatencySnap
	if err := json.Unmarshal(rr.Body.Bytes(), &snap); err != nil {
		t.Fatalf("JSON: %v", err)
	}
	if snap.Traces != 1 || len(snap.Stages) != int(trace.NumStages) {
		t.Fatalf("JSON snapshot = %+v", snap)
	}

	mux = http.NewServeMux()
	AttachLatency(mux, nil)
	rr = httptest.NewRecorder()
	mux.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/latency", nil))
	if rr.Code != http.StatusNotFound {
		t.Fatalf("disabled status = %d, want 404", rr.Code)
	}
}
