package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// metricType discriminates the exposition families.
type metricType string

const (
	typeCounter   metricType = "counter"
	typeGauge     metricType = "gauge"
	typeHistogram metricType = "histogram"
)

// series is one labeled time series inside a family. Exactly one of the
// value fields is set, matching the family's type.
type series struct {
	labels  string   // canonical `k="v",k2="v2"` signature, "" when unlabeled
	pairs   []string // the label pairs as registered (for Export)
	counter *Counter
	gauge   *Gauge
	gaugeFn func() float64
	hist    *Histogram
}

// family groups every series sharing one metric name.
type family struct {
	name   string
	help   string
	typ    metricType
	series map[string]*series
}

// A Registry is a concurrent collection of named metrics. Metric
// constructors are get-or-create: asking twice for the same name and labels
// returns the same metric, so instrumented components can be rebuilt (e.g.
// one engine per experiment run) against a long-lived registry. Asking for
// an existing name with a different metric type panics — that is a
// programming error, not a runtime condition.
//
// All methods are safe for concurrent use, and every method is a no-op (or
// returns a nil, no-op metric) on a nil *Registry, so instrumentation can be
// threaded unconditionally through code that may run without observability.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// labelSignature canonicalizes alternating key/value pairs into a
// deterministic `k="v"` list sorted by key. Panics on an odd count.
func labelSignature(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic("obs: labels must be alternating key, value pairs")
	}
	type kv struct{ k, v string }
	kvs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		kvs = append(kvs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].k < kvs[j].k })
	var b strings.Builder
	for i, p := range kvs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`=`)
		b.WriteString(strconv.Quote(p.v))
	}
	return b.String()
}

// withSeries locates (creating as needed) the series for name+labels,
// checks the family's type, and invokes fn on it while the registry write
// lock is held. Every mutation of series fields goes through here, so a
// series' metric pointers are only ever written under r.mu — the invariant
// the scrape-side snapshot relies on. No-op on a nil registry.
func (r *Registry) withSeries(name, help string, typ metricType, labels []string, fn func(*series)) {
	if r == nil {
		return
	}
	sig := labelSignature(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, series: make(map[string]*series)}
		r.families[name] = f
	} else if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.typ, typ))
	}
	s, ok := f.series[sig]
	if !ok {
		s = &series{labels: sig, pairs: append([]string(nil), labels...)}
		f.series[sig] = s
	}
	fn(s)
}

// Counter returns the counter registered under name+labels, creating it if
// needed. Returns nil (a no-op counter) on a nil registry.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	var c *Counter
	r.withSeries(name, help, typeCounter, labels, func(s *series) {
		if s.counter == nil {
			s.counter = NewCounter()
		}
		c = s.counter
	})
	return c
}

// RegisterCounter exposes an existing standalone counter under name+labels,
// replacing any counter previously registered there. This is how components
// that always count (e.g. the server's ops counter) attach to a registry
// after the fact. No-op when r or c is nil.
func (r *Registry) RegisterCounter(name, help string, c *Counter, labels ...string) {
	if c == nil {
		return
	}
	r.withSeries(name, help, typeCounter, labels, func(s *series) { s.counter = c })
}

// Gauge returns the gauge registered under name+labels, creating it if
// needed. Returns nil (a no-op gauge) on a nil registry.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	var g *Gauge
	r.withSeries(name, help, typeGauge, labels, func(s *series) {
		if s.gauge == nil {
			s.gauge = NewGauge()
		}
		g = s.gauge
	})
	return g
}

// GaugeFunc registers a gauge computed by fn at scrape time, replacing any
// function previously registered under name+labels. fn must be safe to call
// from the scrape goroutine (take the locks it needs). No-op on nil r or fn.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	if fn == nil {
		return
	}
	r.withSeries(name, help, typeGauge, labels, func(s *series) { s.gaugeFn = fn })
}

// Histogram returns the histogram registered under name+labels, creating it
// with the given bounds (LatencyBuckets when empty) if needed. Returns nil
// (a no-op histogram) on a nil registry.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	var h *Histogram
	r.withSeries(name, help, typeHistogram, labels, func(s *series) {
		if s.hist == nil {
			s.hist = NewHistogram(bounds)
		}
		h = s.hist
	})
	return h
}

// RegisterHistogram exposes an existing standalone histogram under
// name+labels, replacing any histogram previously registered there. This is
// how components that own their histograms (e.g. the latency view, which
// observes into them from its own collection pass) attach to a registry
// without double-counting. No-op when r or h is nil.
func (r *Registry) RegisterHistogram(name, help string, h *Histogram, labels ...string) {
	if h == nil {
		return
	}
	r.withSeries(name, help, typeHistogram, labels, func(s *series) { s.hist = h })
}

// famSnap is a point-in-time copy of one family, taken under the registry
// lock so scrapes never touch the live series maps while withSeries inserts
// into them. The series are value copies (label signature plus metric
// pointers); the metrics themselves are internally atomic, and gaugeFn
// closures are evaluated after the lock is released so they are free to take
// their own locks.
type famSnap struct {
	name   string
	help   string
	typ    metricType
	series []series
}

// snapshotFamilies copies every family and its series under r.mu, ordered by
// family name and label signature — the deterministic exposition order both
// scrape paths rely on.
func (r *Registry) snapshotFamilies() []famSnap {
	r.mu.RLock()
	fams := make([]famSnap, 0, len(r.families))
	for _, f := range r.families {
		fs := famSnap{name: f.name, help: f.help, typ: f.typ,
			series: make([]series, 0, len(f.series))}
		for _, s := range f.series {
			fs.series = append(fs.series, *s)
		}
		sort.Slice(fs.series, func(i, j int) bool { return fs.series[i].labels < fs.series[j].labels })
		fams = append(fams, fs)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// fmtFloat renders a float the way the Prometheus text format expects.
func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// seriesName renders `name{labels}` or bare `name`, with extra label pairs
// (e.g. le) appended after the series labels.
func seriesName(name, labels string, extra ...string) string {
	var b strings.Builder
	b.WriteString(name)
	if labels == "" && len(extra) == 0 {
		return b.String()
	}
	b.WriteByte('{')
	b.WriteString(labels)
	for i := 0; i < len(extra); i += 2 {
		if b.Len() > len(name)+1 {
			b.WriteByte(',')
		}
		b.WriteString(extra[i])
		b.WriteString(`=`)
		b.WriteString(strconv.Quote(extra[i+1]))
	}
	b.WriteByte('}')
	return b.String()
}

// WritePrometheus writes the whole registry in the Prometheus text
// exposition format (version 0.0.4): # HELP and # TYPE comments per family,
// one line per series, histograms as cumulative _bucket/_sum/_count. Output
// order is deterministic. A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	var b strings.Builder
	for _, f := range r.snapshotFamilies() {
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range f.series {
			switch f.typ {
			case typeCounter:
				fmt.Fprintf(&b, "%s %d\n", seriesName(f.name, s.labels), s.counter.Value())
			case typeGauge:
				v := s.gauge.Value()
				if s.gaugeFn != nil {
					v = s.gaugeFn()
				}
				fmt.Fprintf(&b, "%s %s\n", seriesName(f.name, s.labels), fmtFloat(v))
			case typeHistogram:
				h := s.hist
				counts := h.snapshot()
				var cum int64
				for i, bound := range h.bounds {
					cum += counts[i]
					fmt.Fprintf(&b, "%s %d\n",
						seriesName(f.name+"_bucket", s.labels, "le", fmtFloat(bound)), cum)
				}
				cum += counts[len(counts)-1]
				fmt.Fprintf(&b, "%s %d\n", seriesName(f.name+"_bucket", s.labels, "le", "+Inf"), cum)
				fmt.Fprintf(&b, "%s %s\n", seriesName(f.name+"_sum", s.labels), fmtFloat(h.Sum()))
				fmt.Fprintf(&b, "%s %d\n", seriesName(f.name+"_count", s.labels), cum)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// SeriesPoint is one exported counter or gauge sample: the series identity
// (name, help, label pairs as registered) plus its current value. It is the
// unit the cluster telemetry plane ships from worker registries to the
// router, which re-imports each point under an extra node label. Histograms
// are not exported — their bucket state does not merge across processes.
type SeriesPoint struct {
	Name    string
	Help    string
	Counter bool // counter (monotone, re-imported as a counter) vs gauge
	Labels  []string
	Value   float64
}

// Key returns the point's series identity as `name{labels}` — stable across
// exports, usable as a map key for delta tracking.
func (p SeriesPoint) Key() string { return seriesName(p.Name, labelSignature(p.Labels)) }

// Export returns every counter and gauge series as a SeriesPoint, in the
// deterministic exposition order. Gauge functions are evaluated outside the
// registry lock, like a scrape. Histograms are skipped. Nil returns nil.
func (r *Registry) Export() []SeriesPoint {
	if r == nil {
		return nil
	}
	var out []SeriesPoint
	for _, f := range r.snapshotFamilies() {
		for _, s := range f.series {
			p := SeriesPoint{Name: f.name, Help: f.help, Labels: s.pairs}
			switch f.typ {
			case typeCounter:
				p.Counter = true
				p.Value = float64(s.counter.Value())
			case typeGauge:
				if s.gaugeFn != nil {
					p.Value = s.gaugeFn()
				} else {
					p.Value = s.gauge.Value()
				}
			default:
				continue
			}
			out = append(out, p)
		}
	}
	return out
}

// Snapshot returns the registry as a flat map from `name{labels}` to value:
// counters as int64, gauges as float64, histograms as a nested map with
// count, sum, and estimated p50/p90/p99 — the /debug/vars-style JSON view.
// A nil registry returns an empty map.
func (r *Registry) Snapshot() map[string]any {
	out := make(map[string]any)
	if r == nil {
		return out
	}
	for _, f := range r.snapshotFamilies() {
		for _, s := range f.series {
			key := seriesName(f.name, s.labels)
			switch f.typ {
			case typeCounter:
				out[key] = s.counter.Value()
			case typeGauge:
				if s.gaugeFn != nil {
					out[key] = s.gaugeFn()
				} else {
					out[key] = s.gauge.Value()
				}
			case typeHistogram:
				h := s.hist
				out[key] = map[string]any{
					"count": h.Count(),
					"sum":   h.Sum(),
					"p50":   h.Quantile(0.50),
					"p90":   h.Quantile(0.90),
					"p99":   h.Quantile(0.99),
					"p999":  h.Quantile(0.999),
					"max":   h.Max(),
				}
			}
		}
	}
	return out
}
