package obs

import (
	"runtime"
	"sync"
	"time"
)

// memSampler caches runtime.ReadMemStats results. The read stops the world,
// so a scrape that evaluates several memory gauges — or several concurrent
// scrapers — must share one sample rather than pay the pause per gauge.
type memSampler struct {
	mu sync.Mutex
	at time.Time
	ms runtime.MemStats
}

// memSampleTTL bounds the staleness of a shared MemStats sample. Well below
// any sane scrape interval, well above the burst width of one scrape.
const memSampleTTL = 100 * time.Millisecond

func (s *memSampler) stats() runtime.MemStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	if now := time.Now(); now.Sub(s.at) > memSampleTTL {
		runtime.ReadMemStats(&s.ms)
		s.at = now
	}
	return s.ms
}

// RegisterRuntime adds Go runtime gauges to the registry, computed at scrape
// time: goroutine count, heap size and object count, the next GC target, and
// GC cycle/pause statistics. All memory gauges read one cached MemStats
// sample (see memSampler). Safe to call repeatedly on the same registry —
// re-registration replaces the gauge functions. No-op on nil.
func RegisterRuntime(r *Registry) {
	if r == nil {
		return
	}
	s := &memSampler{}
	r.GaugeFunc("mobieyes_go_goroutines", "Number of live goroutines.", func() float64 {
		return float64(runtime.NumGoroutine())
	})
	r.GaugeFunc("mobieyes_go_heap_bytes", "Bytes of allocated heap objects.", func() float64 {
		return float64(s.stats().HeapAlloc)
	})
	r.GaugeFunc("mobieyes_go_heap_objects", "Number of allocated heap objects.", func() float64 {
		return float64(s.stats().HeapObjects)
	})
	r.GaugeFunc("mobieyes_go_next_gc_bytes", "Heap size target of the next GC cycle.", func() float64 {
		return float64(s.stats().NextGC)
	})
	r.GaugeFunc("mobieyes_go_gc_total", "Completed GC cycles.", func() float64 {
		return float64(s.stats().NumGC)
	})
	r.GaugeFunc("mobieyes_go_gc_pause_total_seconds", "Cumulative stop-the-world GC pause time.", func() float64 {
		return float64(s.stats().PauseTotalNs) / 1e9
	})
	r.GaugeFunc("mobieyes_go_gc_last_pause_seconds", "Duration of the most recent stop-the-world GC pause.", func() float64 {
		ms := s.stats()
		if ms.NumGC == 0 {
			return 0
		}
		// PauseNs is a circular buffer indexed by GC cycle number.
		return float64(ms.PauseNs[(ms.NumGC+255)%256]) / 1e9
	})
}

// SetContentionProfiling enables the runtime's contention profilers behind
// the pprof endpoint: mutexFraction is passed to
// runtime.SetMutexProfileFraction (sample 1/n mutex-unlock contention
// events; 0 leaves the current setting, -1 disables), and blockRateNs to
// runtime.SetBlockProfileRate (sample blocking events lasting ≥ n ns; 0
// leaves the current setting untouched, so the flags' zero defaults are
// free). The profiles appear at /debug/pprof/mutex and /debug/pprof/block
// on any mux from NewMux.
func SetContentionProfiling(mutexFraction, blockRateNs int) {
	if mutexFraction != 0 {
		if mutexFraction < 0 {
			mutexFraction = 0 // runtime's "disable" spelling
		}
		runtime.SetMutexProfileFraction(mutexFraction)
	}
	if blockRateNs != 0 {
		if blockRateNs < 0 {
			blockRateNs = 0
		}
		runtime.SetBlockProfileRate(blockRateNs)
	}
}
