package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestWritePrometheusGolden pins the exact exposition output for a small
// registry: family ordering, HELP/TYPE comments, label rendering, and the
// cumulative histogram encoding.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("mobieyes_server_ops_total", "Elementary server operations.", "shard", "0").Add(3)
	r.Counter("mobieyes_server_ops_total", "Elementary server operations.", "shard", "1").Add(4)
	r.Gauge("mobieyes_remote_connections", "Live object connections.").Set(2)
	h := r.Histogram("mobieyes_server_uplink_seconds", "Uplink handling latency.", []float64{0.001, 0.01})
	h.Observe(0.0005)
	h.Observe(0.0005)
	h.Observe(0.005)
	h.Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP mobieyes_remote_connections Live object connections.
# TYPE mobieyes_remote_connections gauge
mobieyes_remote_connections 2
# HELP mobieyes_server_ops_total Elementary server operations.
# TYPE mobieyes_server_ops_total counter
mobieyes_server_ops_total{shard="0"} 3
mobieyes_server_ops_total{shard="1"} 4
# HELP mobieyes_server_uplink_seconds Uplink handling latency.
# TYPE mobieyes_server_uplink_seconds histogram
mobieyes_server_uplink_seconds_bucket{le="0.001"} 2
mobieyes_server_uplink_seconds_bucket{le="0.01"} 3
mobieyes_server_uplink_seconds_bucket{le="+Inf"} 4
mobieyes_server_uplink_seconds_sum 5.006
mobieyes_server_uplink_seconds_count 4
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestHTTPEndpoints drives the mux end to end: /metrics parses as
// exposition text, /debug/vars as JSON, /healthz answers, and the pprof
// index responds.
func TestHTTPEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("mobieyes_server_ops_total", "", "shard", "0").Add(9)
	r.Histogram("mobieyes_sim_step_seconds", "", nil).Observe(0.01)
	ts := httptest.NewServer(NewMux(r))
	defer ts.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/metrics"); code != 200 ||
		!strings.Contains(body, `mobieyes_server_ops_total{shard="0"} 9`) ||
		!strings.Contains(body, `mobieyes_sim_step_seconds_count 1`) {
		t.Errorf("/metrics: code %d body:\n%s", code, body)
	}
	code, body := get("/debug/vars")
	if code != 200 {
		t.Fatalf("/debug/vars: code %d", code)
	}
	var vars map[string]any
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v\n%s", err, body)
	}
	if vars[`mobieyes_server_ops_total{shard="0"}`] != 9.0 {
		t.Errorf("/debug/vars counter = %v", vars[`mobieyes_server_ops_total{shard="0"}`])
	}
	if code, body := get("/healthz"); code != 200 || body != "ok\n" {
		t.Errorf("/healthz: code %d body %q", code, body)
	}
	if code, _ := get("/debug/pprof/"); code != 200 {
		t.Errorf("/debug/pprof/: code %d", code)
	}
}

// TestListenAndServe: the standalone endpoint binds, serves, and closes.
func TestListenAndServe(t *testing.T) {
	r := NewRegistry()
	r.Counter("mobieyes_x_total", "").Inc()
	h, err := ListenAndServe("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	resp, err := http.Get("http://" + h.Addr().String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "mobieyes_x_total 1") {
		t.Errorf("metrics body:\n%s", body)
	}
	// Runtime gauges are registered by ListenAndServe.
	if !strings.Contains(string(body), "mobieyes_go_goroutines") {
		t.Error("runtime gauges missing")
	}
}
