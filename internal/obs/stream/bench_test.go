package stream_test

import (
	"fmt"
	"sync"
	"testing"

	"mobieyes/internal/obs/stream"
)

// BenchmarkStreamFanOut measures the engine-side Publish cost with N live
// subscribers, each drained by its own goroutine — the bound on what the
// gateway adds to the result hot path.
func BenchmarkStreamFanOut(b *testing.B) {
	for _, subs := range []int{0, 1, 16, 64} {
		b.Run(fmt.Sprintf("subs=%d", subs), func(b *testing.B) {
			tap := stream.NewTap()
			var wg sync.WaitGroup
			stop := make(chan struct{})
			for i := 0; i < subs; i++ {
				sub, _ := tap.Subscribe(stream.Firehose, 1<<22)
				wg.Add(1)
				go func(sub *stream.Sub) {
					defer wg.Done()
					for {
						select {
						case <-stop:
							sub.Drain()
							sub.Close()
							return
						case <-sub.Ready():
							sub.Drain()
						}
					}
				}(sub)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tap.Publish(int64(i%8+1), int64(i%1000), i%2 == 0)
			}
			b.StopTimer()
			close(stop)
			wg.Wait()
			if _, _, dropped, _ := tap.Stats(); dropped != 0 {
				b.Fatalf("dropped %d events mid-benchmark", dropped)
			}
		})
	}
}
