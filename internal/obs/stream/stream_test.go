package stream_test

import (
	"sync"
	"testing"

	"mobieyes/internal/obs/stream"
)

// TestSlowConsumerEviction pins the back-pressure contract: a subscriber
// that stops draining is evicted at the first publish that finds its buffer
// full, and from then on the engine does zero work for it — proven by the
// fan-out counters, which must not move again.
func TestSlowConsumerEviction(t *testing.T) {
	tap := stream.NewTap()
	sub, _ := tap.Subscribe(1, 4)
	fast, _ := tap.Subscribe(1, 1<<16)

	for i := 0; i < 100; i++ {
		tap.Publish(1, int64(i+10), true)
	}
	published, fanned, dropped, evictions := tap.Stats()
	if published != 100 {
		t.Fatalf("published = %d", published)
	}
	// The stalled sub absorbed 4 events then was evicted (4 buffered + 1
	// overflowing = 5 dropped); the fast sub absorbed all 100.
	if evictions != 1 || dropped != 5 {
		t.Fatalf("evictions = %d, dropped = %d (want 1, 5)", evictions, dropped)
	}
	if fanned != 4+100 {
		t.Fatalf("fanned = %d, want 104", fanned)
	}
	if n := tap.Subscribers(); n != 1 {
		t.Fatalf("subscribers after eviction = %d, want 1", n)
	}

	// The evicted sub learns on drain: no events, evicted=true.
	select {
	case <-sub.Ready():
	default:
		t.Fatal("evicted sub not signaled")
	}
	evs, evicted := sub.Drain()
	if !evicted || len(evs) != 0 {
		t.Fatalf("Drain after eviction = %d events, evicted=%v", len(evs), evicted)
	}

	// Reconnecting re-snapshots: the fresh snapshot carries the current
	// state and sequence, and deltas resume with no gap.
	sub2, snap := tap.Subscribe(1, 4)
	if len(snap) != 1 || snap[0].Seq != 100 || len(snap[0].Members) != 100 {
		t.Fatalf("re-snapshot = %+v", snap)
	}
	tap.Publish(1, 10, false)
	evs2, evicted2 := sub2.Drain()
	if evicted2 || len(evs2) != 1 || evs2[0].Seq != 101 {
		t.Fatalf("post-reconnect drain = %+v evicted=%v", evs2, evicted2)
	}
	sub2.Close()
	fast.Close()

	// Closing is idempotent and eviction-safe.
	sub.Close()
	if n := tap.Subscribers(); n != 0 {
		t.Fatalf("subscribers = %d, want 0", n)
	}
}

// TestTapConcurrentGapFree hammers the tap from concurrent publishers
// (mirroring the sharded backend's concurrent listener callbacks) while
// subscribers attach mid-stream; every subscriber must observe contiguous
// per-query sequences from its snapshot cut. Run with -race.
func TestTapConcurrentGapFree(t *testing.T) {
	tap := stream.NewTap()
	const (
		publishers = 4
		perPub     = 500
	)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func(qid int64) {
			defer wg.Done()
			<-start
			for i := 0; i < perPub; i++ {
				tap.Publish(qid, int64(i%50), i%2 == 0)
			}
		}(int64(p + 1))
	}

	subResults := make(chan map[int64]uint64, 8)
	for s := 0; s < 8; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			sub, snap := tap.Subscribe(stream.Firehose, publishers*perPub+16)
			defer sub.Close()
			last := map[int64]uint64{}
			for _, e := range snap {
				last[e.QID] = e.Seq
			}
			seen := 0
			for _, e := range snap {
				seen += int(e.Seq) // events before the cut, per query
			}
			for seen < publishers*perPub {
				<-sub.Ready()
				evs, evicted := sub.Drain()
				if evicted {
					t.Error("subscriber evicted despite ample buffer")
					return
				}
				for _, ev := range evs {
					if last[ev.QID]+1 != ev.Seq {
						t.Errorf("qid %d gap: %d -> %d", ev.QID, last[ev.QID], ev.Seq)
						return
					}
					last[ev.QID] = ev.Seq
					seen++
				}
			}
			subResults <- last
		}()
	}
	close(start)
	wg.Wait()
	close(subResults)
	for last := range subResults {
		for qid, seq := range last {
			if seq != perPub {
				t.Fatalf("qid %d final seq = %d, want %d", qid, seq, perPub)
			}
		}
	}
	published, _, dropped, evictions := tap.Stats()
	if published != publishers*perPub {
		t.Fatalf("published = %d", published)
	}
	if dropped != 0 || evictions != 0 {
		t.Fatalf("unexpected drops: dropped=%d evictions=%d", dropped, evictions)
	}
}

func TestNilTapIsDisabled(t *testing.T) {
	var tap *stream.Tap
	tap.Publish(1, 2, true) // must not panic
	tap.SetSink(func(int64, uint64, int64, bool) {})
	if tap.Subscribers() != 0 {
		t.Fatal("nil tap has subscribers")
	}
	if members, seq := tap.Result(1); members != nil || seq != 0 {
		t.Fatal("nil tap has results")
	}
}

// TestSinkSeesSequenceOrder pins the history tee contract: the sink runs
// under the tap mutex and observes every event in per-query sequence order
// with the seq the subscribers see.
func TestSinkSeesSequenceOrder(t *testing.T) {
	tap := stream.NewTap()
	type rec struct {
		qid int64
		seq uint64
		oid int64
		ent bool
	}
	var got []rec
	tap.SetSink(func(qid int64, seq uint64, oid int64, enter bool) {
		got = append(got, rec{qid, seq, oid, enter})
	})
	tap.Publish(7, 1, true)
	tap.Publish(7, 2, true)
	tap.Publish(7, 1, false)
	want := []rec{{7, 1, 1, true}, {7, 2, 2, true}, {7, 3, 1, false}}
	if len(got) != len(want) {
		t.Fatalf("sink saw %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sink[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
}
