package stream

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"mobieyes/internal/obs"
)

// Gateway serves the tap over HTTP as Server-Sent Events with
// snapshot-then-delta semantics:
//
//	GET /debug/stream            firehose: every query's events
//	GET /debug/stream?qid=N      one query's events
//	GET /debug/stream?buf=N      per-connection buffer (events; clamped)
//
// On connect the client receives one `snapshot` event per query (sequenced
// members, SSE id "qid:seq"), then a `live` marker, then `result` deltas
// whose ids continue each query's sequence with no gap. A client that
// cannot keep up is evicted: it receives a final `evicted` event (best
// effort) and the connection closes; reconnecting re-snapshots.
//
// Writes carry a per-write deadline so a stalled TCP peer cannot pin the
// fan-out goroutine — and the engine is insulated regardless, because the
// engine only ever appends to the bounded subscriber buffer.
type Gateway struct {
	tap *Tap

	// BufCap is the default per-connection event buffer (default 1024).
	BufCap int
	// WriteTimeout is the per-write deadline (default 5s).
	WriteTimeout time.Duration
	// Heartbeat is the idle keep-alive comment interval (default 15s).
	Heartbeat time.Duration

	costHook func(bytes int)

	conns        obs.Counter // connections accepted
	evictedConns obs.Counter // connections closed by eviction
	bytesOut     obs.Counter // SSE bytes written
}

// NewGateway returns a gateway over tap with default limits.
func NewGateway(tap *Tap) *Gateway {
	return &Gateway{tap: tap, BufCap: 1024, WriteTimeout: 5 * time.Second, Heartbeat: 15 * time.Second}
}

// Tap returns the gateway's tap.
func (g *Gateway) Tap() *Tap {
	if g == nil {
		return nil
	}
	return g.tap
}

// SetCostHook installs the encode-boundary charging hook (e.g.
// cost.Accountant.GatewayEgress): it is called with the exact SSE bytes of
// every write. Call before traffic; nil disables.
func (g *Gateway) SetCostHook(fn func(bytes int)) {
	if g == nil {
		return
	}
	g.costHook = fn
}

// Instrument registers gateway counters on reg (the tap is instrumented
// separately):
//
//	mobieyes_stream_connections_total         SSE connections accepted
//	mobieyes_stream_evicted_connections_total connections closed by eviction
//	mobieyes_stream_egress_bytes_total        SSE bytes written
func (g *Gateway) Instrument(reg *obs.Registry) {
	if g == nil || reg == nil {
		return
	}
	reg.RegisterCounter("mobieyes_stream_connections_total",
		"SSE stream connections accepted.", &g.conns)
	reg.RegisterCounter("mobieyes_stream_evicted_connections_total",
		"SSE stream connections closed by slow-consumer eviction.", &g.evictedConns)
	reg.RegisterCounter("mobieyes_stream_egress_bytes_total",
		"SSE bytes written to stream subscribers.", &g.bytesOut)
}

// Attach mounts the gateway on mux at /debug/stream. A nil gateway answers
// 404 (streaming disabled).
func Attach(mux *http.ServeMux, g *Gateway) {
	mux.HandleFunc("/debug/stream", func(w http.ResponseWriter, req *http.Request) {
		if g == nil || g.tap == nil {
			http.Error(w, "streaming disabled", http.StatusNotFound)
			return
		}
		g.serve(w, req)
	})
}

func (g *Gateway) serve(w http.ResponseWriter, req *http.Request) {
	qid := Firehose
	if v := req.URL.Query().Get("qid"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n < 0 {
			http.Error(w, "bad qid parameter", http.StatusBadRequest)
			return
		}
		qid = n
	}
	bufCap := g.BufCap
	if bufCap <= 0 {
		bufCap = 1024
	}
	if v := req.URL.Query().Get("buf"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			http.Error(w, "bad buf parameter", http.StatusBadRequest)
			return
		}
		if n < bufCap {
			bufCap = n
		}
	}

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	g.conns.Add(1)

	rc := http.NewResponseController(w)
	writeTimeout := g.WriteTimeout
	if writeTimeout <= 0 {
		writeTimeout = 5 * time.Second
	}
	// write emits one SSE frame and charges its exact byte length at the
	// encode boundary — the same on-the-wire rule the remote transport
	// applies to frames (DESIGN.md §12).
	write := func(event, id string, data any) error {
		payload, err := json.Marshal(data)
		if err != nil {
			return err
		}
		frame := make([]byte, 0, len(payload)+len(event)+len(id)+24)
		frame = append(frame, "event: "...)
		frame = append(frame, event...)
		frame = append(frame, '\n')
		if id != "" {
			frame = append(frame, "id: "...)
			frame = append(frame, id...)
			frame = append(frame, '\n')
		}
		frame = append(frame, "data: "...)
		frame = append(frame, payload...)
		frame = append(frame, '\n', '\n')
		rc.SetWriteDeadline(time.Now().Add(writeTimeout))
		n, err := w.Write(frame)
		if n > 0 {
			g.bytesOut.Add(int64(n))
			if g.costHook != nil {
				g.costHook(n)
			}
		}
		if err != nil {
			return err
		}
		return rc.Flush()
	}

	sub, snap := g.tap.Subscribe(qid, bufCap)
	defer sub.Close()

	for _, e := range snap {
		if err := write("snapshot", fmt.Sprintf("%d:%d", e.QID, e.Seq), e); err != nil {
			return
		}
	}
	if err := write("live", "", map[string]int64{"qid": qid}); err != nil {
		return
	}

	heartbeat := g.Heartbeat
	if heartbeat <= 0 {
		heartbeat = 15 * time.Second
	}
	ticker := time.NewTicker(heartbeat)
	defer ticker.Stop()
	for {
		select {
		case <-req.Context().Done():
			return
		case <-ticker.C:
			rc.SetWriteDeadline(time.Now().Add(writeTimeout))
			n, err := w.Write([]byte(": ping\n\n"))
			if n > 0 {
				g.bytesOut.Add(int64(n))
				if g.costHook != nil {
					g.costHook(n)
				}
			}
			if err != nil || rc.Flush() != nil {
				return
			}
		case <-sub.Ready():
			evs, evicted := sub.Drain()
			for _, ev := range evs {
				if err := write("result", fmt.Sprintf("%d:%d", ev.QID, ev.Seq), ev); err != nil {
					return
				}
			}
			if evicted {
				g.evictedConns.Add(1)
				write("evicted", "", map[string]int64{"qid": qid})
				return
			}
		}
	}
}
