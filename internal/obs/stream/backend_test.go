package stream_test

// Backend tests: the tap fed from core.ServerAPI.SetResultListener must
// deliver snapshot-then-delta streams that match the engine's result sets
// exactly, identically across the serial, sharded, and cluster backends.

import (
	"fmt"
	"sort"
	"testing"

	"mobieyes/internal/core"
	"mobieyes/internal/geo"
	"mobieyes/internal/grid"
	"mobieyes/internal/model"
	"mobieyes/internal/msg"
	"mobieyes/internal/obs/stream"
)

var matchAll = model.Filter{Seed: 1, Permille: 1000}

// harness is a minimal deterministic protocol driver (queued downlinks, one
// giant base station) mirroring the core package's test harness, usable from
// outside core.
type harness struct {
	g       *grid.Grid
	srv     core.ServerAPI
	objs    []*model.MovingObject
	clients []*core.Client
	byOID   map[model.ObjectID]int
	queue   []queuedDown
	now     model.Time
	opts    core.Options
}

type queuedDown struct {
	target model.ObjectID // -1 for broadcast
	m      msg.Message
}

type hDown struct{ h *harness }

func (d hDown) Broadcast(_ grid.CellRange, m msg.Message) {
	d.h.queue = append(d.h.queue, queuedDown{target: -1, m: m})
}
func (d hDown) Unicast(oid model.ObjectID, m msg.Message) {
	d.h.queue = append(d.h.queue, queuedDown{target: oid, m: m})
}

type hUp struct{ h *harness }

func (u hUp) Send(m msg.Message) { u.h.srv.HandleUplink(m) }

func newHarness(t *testing.T, backend string) *harness {
	t.Helper()
	h := &harness{byOID: map[model.ObjectID]int{}}
	h.g = grid.New(geo.NewRect(0, 0, 100, 100), 5)
	switch backend {
	case "serial":
		h.srv = core.NewServer(h.g, h.opts, hDown{h})
	case "sharded":
		h.srv = core.NewShardedServer(h.g, h.opts, hDown{h}, 4)
	case "cluster":
		h.srv = core.NewClusterServer(h.g, h.opts, hDown{h}, 3)
	default:
		t.Fatalf("unknown backend %q", backend)
	}
	return h
}

func (h *harness) addObject(oid model.ObjectID, pos geo.Point, vel geo.Vector, maxVel float64, key uint64) {
	o := &model.MovingObject{ID: oid, Pos: pos, Vel: vel, MaxVel: maxVel, Props: model.Props{Key: key}}
	c := core.NewClient(h.g, h.opts, hUp{h}, oid, o.Props, maxVel, pos)
	h.byOID[oid] = len(h.objs)
	h.objs = append(h.objs, o)
	h.clients = append(h.clients, c)
}

func (h *harness) flushDown() {
	for len(h.queue) > 0 {
		q := h.queue[0]
		h.queue = h.queue[1:]
		if q.target >= 0 {
			i := h.byOID[q.target]
			h.clients[i].OnDownlink(q.m, h.objs[i].Pos, h.objs[i].Vel, h.now)
			continue
		}
		for i, c := range h.clients {
			c.OnDownlink(q.m, h.objs[i].Pos, h.objs[i].Vel, h.now)
		}
	}
}

func (h *harness) install(focal model.ObjectID, radius float64, maxVel float64) model.QueryID {
	qid := h.srv.InstallQuery(focal, model.CircleRegion{R: radius}, matchAll, maxVel)
	h.flushDown()
	return qid
}

func (h *harness) step(dt model.Time) {
	h.now += dt
	for _, o := range h.objs {
		o.Move(dt)
	}
	for i, c := range h.clients {
		c.TickCellChange(h.objs[i].Pos, h.objs[i].Vel, h.now)
	}
	h.flushDown()
	for i, c := range h.clients {
		c.TickDeadReckoning(h.objs[i].Pos, h.objs[i].Vel, h.now)
	}
	h.flushDown()
	for i, c := range h.clients {
		c.TickEvaluate(h.objs[i].Pos, h.objs[i].Vel, h.now)
	}
	h.flushDown()
}

// subscriberView integrates a snapshot-then-delta stream and checks
// gap-freeness as it goes.
type subscriberView struct {
	t       *testing.T
	name    string
	seq     map[int64]uint64
	members map[int64]map[int64]bool
	known   map[int64]bool // qids present in the snapshot
}

func newView(t *testing.T, name string, snap []stream.SnapshotEntry) *subscriberView {
	v := &subscriberView{
		t: t, name: name,
		seq:     map[int64]uint64{},
		members: map[int64]map[int64]bool{},
		known:   map[int64]bool{},
	}
	for _, e := range snap {
		v.seq[e.QID] = e.Seq
		v.known[e.QID] = true
		set := map[int64]bool{}
		for _, oid := range e.Members {
			set[oid] = true
		}
		v.members[e.QID] = set
	}
	return v
}

func (v *subscriberView) apply(evs []stream.Event) {
	for _, ev := range evs {
		// A qid absent from the snapshot (installed after a firehose
		// subscribe, or never seen for a specific subscribe) starts at
		// base 0: its first delta must be seq 1.
		if v.seq[ev.QID]+1 != ev.Seq {
			v.t.Fatalf("%s: qid %d sequence gap: have %d, got event seq %d",
				v.name, ev.QID, v.seq[ev.QID], ev.Seq)
		}
		v.seq[ev.QID] = ev.Seq
		if v.members[ev.QID] == nil {
			v.members[ev.QID] = map[int64]bool{}
		}
		if ev.Enter {
			if v.members[ev.QID][ev.OID] {
				v.t.Fatalf("%s: qid %d duplicate enter for oid %d", v.name, ev.QID, ev.OID)
			}
			v.members[ev.QID][ev.OID] = true
		} else {
			if !v.members[ev.QID][ev.OID] {
				v.t.Fatalf("%s: qid %d leave for non-member oid %d", v.name, ev.QID, ev.OID)
			}
			delete(v.members[ev.QID], ev.OID)
		}
	}
}

func (v *subscriberView) set(qid int64) []int64 {
	var out []int64
	for oid := range v.members[qid] {
		out = append(out, oid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func engineSet(srv core.ServerAPI, qid model.QueryID) []int64 {
	var out []int64
	for _, oid := range srv.Result(qid) {
		out = append(out, int64(oid))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func eq(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSnapshotThenDeltaBackends runs the same scripted workload on all
// three backends: subscribers attach mid-run (firehose and per-query),
// integrate their delta streams, and must converge to the engine's exact
// result sets at every quiescent point with contiguous sequence numbers
// throughout.
func TestSnapshotThenDeltaBackends(t *testing.T) {
	for _, backend := range []string{"serial", "sharded", "cluster"} {
		t.Run(backend, func(t *testing.T) {
			h := newHarness(t, backend)
			tap := stream.NewTap()
			h.srv.SetResultListener(func(ev core.ResultEvent) {
				tap.Publish(int64(ev.QID), int64(ev.OID), ev.Entered)
			})

			// A ring of objects around two focals; queries see churn as
			// the ring rotates through the regions.
			h.addObject(1, geo.Pt(30, 50), geo.Vec(0, 0), 200, 11)
			h.addObject(2, geo.Pt(70, 50), geo.Vec(0, 0), 200, 22)
			for i := 3; i <= 12; i++ {
				x := 10 + float64(i*7%80)
				h.addObject(model.ObjectID(i), geo.Pt(x, 48), geo.Vec(150, 0), 200, uint64(i))
			}
			q1 := h.install(1, 6, 200)
			q2 := h.install(2, 6, 200)
			h.step(model.FromSeconds(30))
			h.step(model.FromSeconds(30))

			// Mid-run subscribers: one firehose, one per query.
			fireSub, fireSnap := tap.Subscribe(stream.Firehose, 1<<16)
			fire := newView(t, backend+"/firehose", fireSnap)
			q1Sub, q1Snap := tap.Subscribe(int64(q1), 1<<16)
			v1 := newView(t, backend+"/q1", q1Snap)

			// The snapshot must equal the engine's result set at the cut.
			for _, e := range fireSnap {
				if got, want := e.Members, engineSet(h.srv, model.QueryID(e.QID)); !eq(got, want) {
					t.Fatalf("snapshot qid %d = %v, engine has %v", e.QID, got, want)
				}
			}

			for s := 0; s < 12; s++ {
				h.step(model.FromSeconds(30))
				// Quiescent between steps: drain and compare exactly.
				evs, evicted := fireSub.Drain()
				if evicted {
					t.Fatal("firehose subscriber evicted")
				}
				fire.apply(evs)
				evs1, _ := q1Sub.Drain()
				v1.apply(evs1)
				for _, ev := range evs1 {
					if ev.QID != int64(q1) {
						t.Fatalf("per-query sub saw qid %d", ev.QID)
					}
				}
				for _, qid := range []model.QueryID{q1, q2} {
					if got, want := fire.set(int64(qid)), engineSet(h.srv, qid); !eq(got, want) {
						t.Fatalf("%s step %d qid %d: stream view %v != engine %v",
							backend, s, qid, got, want)
					}
				}
				if got, want := v1.set(int64(q1)), engineSet(h.srv, q1); !eq(got, want) {
					t.Fatalf("%s step %d q1 view %v != engine %v", backend, s, got, want)
				}
			}

			// Removal streams the implicit leaves; the view converges to
			// empty.
			h.srv.RemoveQuery(q1)
			evs, _ := fireSub.Drain()
			fire.apply(evs)
			if got := fire.set(int64(q1)); len(got) != 0 {
				t.Fatalf("after removal, view of q1 = %v", got)
			}
			fireSub.Close()
			q1Sub.Close()
			if n := tap.Subscribers(); n != 0 {
				t.Fatalf("subscribers after close = %d", n)
			}
			if err := h.srv.CheckInvariants(); err != nil {
				t.Fatalf("invariants: %v", err)
			}
		})
	}
}

// TestLateQueryReachesFirehose pins the base-0 rule: a query installed
// after a firehose subscriber connected streams from seq 1 with no
// snapshot entry.
func TestLateQueryReachesFirehose(t *testing.T) {
	h := newHarness(t, "serial")
	tap := stream.NewTap()
	h.srv.SetResultListener(func(ev core.ResultEvent) {
		tap.Publish(int64(ev.QID), int64(ev.OID), ev.Entered)
	})
	h.addObject(1, geo.Pt(50, 50), geo.Vec(0, 0), 100, 11)

	sub, snap := tap.Subscribe(stream.Firehose, 64)
	if len(snap) != 0 {
		t.Fatalf("snapshot before any query = %v", snap)
	}
	v := newView(t, "late", snap)
	qid := h.install(1, 3, 100)
	h.step(model.FromSeconds(30))
	evs, _ := sub.Drain()
	if len(evs) == 0 {
		t.Fatal("no events for late query")
	}
	if evs[0].Seq != 1 {
		t.Fatalf("first seq for late query = %d, want 1", evs[0].Seq)
	}
	v.apply(evs)
	if got, want := v.set(int64(qid)), engineSet(h.srv, qid); !eq(got, want) {
		t.Fatalf("late view %v != engine %v", got, want)
	}
	sub.Close()
}

func ExampleTap() {
	tap := stream.NewTap()
	sub, _ := tap.Subscribe(stream.Firehose, 16)
	tap.Publish(1, 42, true)
	evs, _ := sub.Drain()
	fmt.Printf("qid %d seq %d oid %d enter %v\n", evs[0].QID, evs[0].Seq, evs[0].OID, evs[0].Enter)
	// Output: qid 1 seq 1 oid 42 enter true
}
