// Package stream is the live result gateway (DESIGN.md §17): a single
// engine-side tap on the differential result stream
// (core.ServerAPI.SetResultListener) fanned out to many concurrent
// subscribers with strict snapshot-then-delta semantics.
//
// The Tap mirrors each query's current result set and a monotone per-query
// sequence number. Subscribe cuts a sequenced snapshot and registers the
// subscriber under the same mutex that assigns sequence numbers, so the
// first delta a subscriber sees is exactly snapshot seq + 1 — gap-freeness
// by construction, and a client can detect loss by watching for a hole.
//
// Back-pressure never reaches the engine: Publish does constant work per
// subscriber (append to a bounded buffer, non-blocking signal) and performs
// no I/O. A subscriber whose buffer is full is evicted on the spot — its
// buffered events are dropped, it is unsubscribed, and its next Drain
// reports the eviction so the client can reconnect and re-snapshot.
//
// The same event stream can be teed into the append-only history store
// (internal/history) via SetSink; the sink runs under the tap mutex so the
// recorded log is in global sequence order.
package stream

import (
	"sort"
	"sync"

	"mobieyes/internal/obs"
)

// Firehose is the query ID that subscribes to every query's events. Engine
// query IDs start at 1, so 0 is free to mean "all".
const Firehose int64 = 0

// Event is one differential result change as seen by a subscriber: at the
// query's Seq'th change, object OID entered (Enter=true) or left the result
// set.
type Event struct {
	QID   int64  `json:"qid"`
	Seq   uint64 `json:"seq"`
	OID   int64  `json:"oid"`
	Enter bool   `json:"enter"`
}

// SnapshotEntry is one query's sequenced state at subscription time: the
// result membership after its Seq'th change. Deltas for this query resume
// at Seq+1.
type SnapshotEntry struct {
	QID     int64   `json:"qid"`
	Seq     uint64  `json:"seq"`
	Members []int64 `json:"members"`
}

// queryState is a query's mirrored result set and its change counter. An
// entry persists after the result empties (and after query removal) so
// sequence numbers never restart within a tap's lifetime; the map is
// bounded by the number of queries ever seen, which matches the engine's
// own query-ID space.
type queryState struct {
	seq     uint64
	members map[int64]struct{}
}

// Tap is the fan-out hub. A nil *Tap is a valid, disabled tap on which
// Publish and SetSink are no-ops.
type Tap struct {
	mu      sync.Mutex
	queries map[int64]*queryState
	subs    map[*Sub]struct{}
	sink    func(qid int64, seq uint64, oid int64, enter bool)

	published obs.Counter // events published by the engine
	fanned    obs.Counter // event deliveries appended to subscriber buffers
	dropped   obs.Counter // events discarded by slow-consumer evictions
	evictions obs.Counter // subscribers evicted
}

// NewTap returns an empty tap.
func NewTap() *Tap {
	return &Tap{
		queries: make(map[int64]*queryState),
		subs:    make(map[*Sub]struct{}),
	}
}

// SetSink installs the history tee, invoked under the tap mutex for every
// published event in global sequence order. The sink must be fast and must
// not call back into the tap. Call before traffic; nil disables.
func (t *Tap) SetSink(fn func(qid int64, seq uint64, oid int64, enter bool)) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.sink = fn
	t.mu.Unlock()
}

// Publish records one result transition and fans it out. This is the engine
// hot-path entry: bounded work per subscriber, no blocking, no I/O.
func (t *Tap) Publish(qid, oid int64, enter bool) {
	if t == nil {
		return
	}
	t.mu.Lock()
	qs := t.queries[qid]
	if qs == nil {
		qs = &queryState{members: make(map[int64]struct{})}
		t.queries[qid] = qs
	}
	qs.seq++
	if enter {
		qs.members[oid] = struct{}{}
	} else {
		delete(qs.members, oid)
	}
	ev := Event{QID: qid, Seq: qs.seq, OID: oid, Enter: enter}
	t.published.Add(1)
	for sub := range t.subs {
		if sub.qid != Firehose && sub.qid != qid {
			continue
		}
		if len(sub.buf) >= sub.cap {
			// Slow consumer: evict rather than block or grow. The
			// buffered events plus this one are dropped; the subscriber
			// learns via Drain and reconnects for a fresh snapshot.
			t.dropped.Add(int64(len(sub.buf)) + 1)
			t.evictions.Add(1)
			sub.evicted = true
			sub.buf = nil
			delete(t.subs, sub)
			sub.signal()
			continue
		}
		sub.buf = append(sub.buf, ev)
		t.fanned.Add(1)
		sub.signal()
	}
	if t.sink != nil {
		t.sink(qid, qs.seq, oid, enter)
	}
	t.mu.Unlock()
}

// Subscribe registers a subscriber for qid's events (Firehose = all
// queries) with a buffer of bufCap events (minimum 1) and returns it with
// its snapshot: the sequenced current result sets, cut atomically with the
// registration so deltas resume exactly at each entry's Seq+1. A specific
// qid the tap has never seen snapshots as {qid, 0, no members} — its first
// delta will be seq 1.
func (t *Tap) Subscribe(qid int64, bufCap int) (*Sub, []SnapshotEntry) {
	if bufCap < 1 {
		bufCap = 1
	}
	sub := &Sub{tap: t, qid: qid, cap: bufCap, ready: make(chan struct{}, 1)}
	t.mu.Lock()
	defer t.mu.Unlock()
	var snap []SnapshotEntry
	if qid == Firehose {
		qids := make([]int64, 0, len(t.queries))
		for id := range t.queries {
			qids = append(qids, id)
		}
		sort.Slice(qids, func(i, j int) bool { return qids[i] < qids[j] })
		for _, id := range qids {
			snap = append(snap, snapshotEntryLocked(id, t.queries[id]))
		}
	} else {
		snap = append(snap, snapshotEntryLocked(qid, t.queries[qid]))
	}
	t.subs[sub] = struct{}{}
	return sub, snap
}

func snapshotEntryLocked(qid int64, qs *queryState) SnapshotEntry {
	e := SnapshotEntry{QID: qid, Members: []int64{}}
	if qs == nil {
		return e
	}
	e.Seq = qs.seq
	for oid := range qs.members {
		e.Members = append(e.Members, oid)
	}
	sort.Slice(e.Members, func(i, j int) bool { return e.Members[i] < e.Members[j] })
	return e
}

// Result returns the tap's mirrored result set for qid (sorted) and its
// sequence number — what a fresh snapshot of qid would contain.
func (t *Tap) Result(qid int64) ([]int64, uint64) {
	if t == nil {
		return nil, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	e := snapshotEntryLocked(qid, t.queries[qid])
	return e.Members, e.Seq
}

// Subscribers returns the number of live subscribers.
func (t *Tap) Subscribers() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.subs)
}

// Stats returns lifetime event counts: published by the engine, deliveries
// fanned to buffers, events dropped by evictions, and subscribers evicted.
func (t *Tap) Stats() (published, fanned, dropped, evictions int64) {
	if t == nil {
		return 0, 0, 0, 0
	}
	return t.published.Value(), t.fanned.Value(),
		t.dropped.Value(), t.evictions.Value()
}

// Instrument registers the tap's gauges and counters on reg:
//
//	mobieyes_stream_subscribers        live subscribers
//	mobieyes_stream_published_total    result events published by the engine
//	mobieyes_stream_fanned_total       event deliveries to subscriber buffers
//	mobieyes_stream_dropped_total      events dropped by slow-consumer evictions
//	mobieyes_stream_evictions_total    subscribers evicted
//
// No-op when t or reg is nil.
func (t *Tap) Instrument(reg *obs.Registry) {
	if t == nil || reg == nil {
		return
	}
	reg.GaugeFunc("mobieyes_stream_subscribers",
		"Live result-stream subscribers.",
		func() float64 { return float64(t.Subscribers()) })
	reg.RegisterCounter("mobieyes_stream_published_total",
		"Result events published into the stream tap.", &t.published)
	reg.RegisterCounter("mobieyes_stream_fanned_total",
		"Result event deliveries appended to subscriber buffers.", &t.fanned)
	reg.RegisterCounter("mobieyes_stream_dropped_total",
		"Result events dropped by slow-consumer evictions.", &t.dropped)
	reg.RegisterCounter("mobieyes_stream_evictions_total",
		"Subscribers evicted for falling behind.", &t.evictions)
}

// Sub is one subscription. Drain from a single goroutine; the buffer itself
// is guarded by the tap mutex.
type Sub struct {
	tap *Tap
	qid int64
	cap int

	// Guarded by tap.mu.
	buf     []Event
	evicted bool

	ready chan struct{}
}

// signal wakes the drainer without blocking (capacity-1 channel).
func (s *Sub) signal() {
	select {
	case s.ready <- struct{}{}:
	default:
	}
}

// Ready returns a channel that receives after events are buffered (or the
// subscription is evicted). One receipt may cover many events: drain after
// each.
func (s *Sub) Ready() <-chan struct{} { return s.ready }

// QID returns the subscribed query ID (Firehose for all-queries).
func (s *Sub) QID() int64 { return s.qid }

// Drain returns and clears the buffered events, plus whether the
// subscription has been evicted for falling behind. After evicted=true no
// further events will arrive; reconnect (re-Subscribe) for a fresh
// snapshot.
func (s *Sub) Drain() ([]Event, bool) {
	s.tap.mu.Lock()
	evs := s.buf
	s.buf = nil
	evicted := s.evicted
	s.tap.mu.Unlock()
	return evs, evicted
}

// Close unsubscribes. Idempotent; safe after eviction.
func (s *Sub) Close() {
	s.tap.mu.Lock()
	delete(s.tap.subs, s)
	s.tap.mu.Unlock()
}
