package stream_test

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mobieyes/internal/obs"
	"mobieyes/internal/obs/stream"
)

// sseEvent is one parsed SSE frame.
type sseEvent struct {
	name string
	id   string
	data string
}

// readSSE parses frames off r until fn returns false or the stream ends.
func readSSE(r *bufio.Reader, fn func(sseEvent) bool) error {
	var ev sseEvent
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return err
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case line == "":
			if ev.name != "" || ev.data != "" {
				if !fn(ev) {
					return nil
				}
			}
			ev = sseEvent{}
		case strings.HasPrefix(line, "event: "):
			ev.name = line[len("event: "):]
		case strings.HasPrefix(line, "id: "):
			ev.id = line[len("id: "):]
		case strings.HasPrefix(line, "data: "):
			ev.data = line[len("data: "):]
		case strings.HasPrefix(line, ":"):
			// heartbeat comment
		}
	}
}

func newSSEServer(t *testing.T, g *stream.Gateway) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	stream.Attach(mux, g)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

// TestGatewaySnapshotThenDelta drives the full SSE path: a client
// connecting mid-stream sees each query's snapshot (with matching SSE id),
// the live marker, then contiguous result deltas.
func TestGatewaySnapshotThenDelta(t *testing.T) {
	tap := stream.NewTap()
	g := stream.NewGateway(tap)
	ts := newSSEServer(t, g)

	tap.Publish(1, 100, true)
	tap.Publish(1, 101, true)
	tap.Publish(2, 200, true)
	tap.Publish(1, 100, false)

	resp, err := http.Get(ts.URL + "/debug/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	// Publish more once the handler has subscribed (headers are written
	// before the subscription cut, so poll the tap).
	waitFor(t, 2*time.Second, func() bool { return tap.Subscribers() == 1 })
	tap.Publish(1, 102, true)
	tap.Publish(2, 200, false)

	type state struct {
		seq     map[int64]uint64
		members map[int64]map[int64]bool
	}
	st := state{seq: map[int64]uint64{}, members: map[int64]map[int64]bool{}}
	var phase string
	var results int
	err = readSSE(bufio.NewReader(resp.Body), func(ev sseEvent) bool {
		switch ev.name {
		case "snapshot":
			if phase != "" && phase != "snapshot" {
				t.Fatalf("snapshot after %q", phase)
			}
			phase = "snapshot"
			var e stream.SnapshotEntry
			if err := json.Unmarshal([]byte(ev.data), &e); err != nil {
				t.Fatalf("snapshot data %q: %v", ev.data, err)
			}
			if want := fmt.Sprintf("%d:%d", e.QID, e.Seq); ev.id != want {
				t.Fatalf("snapshot id = %q, want %q", ev.id, want)
			}
			st.seq[e.QID] = e.Seq
			st.members[e.QID] = map[int64]bool{}
			for _, oid := range e.Members {
				st.members[e.QID][oid] = true
			}
		case "live":
			if phase != "snapshot" {
				t.Fatalf("live after %q", phase)
			}
			phase = "live"
		case "result":
			if phase != "live" {
				t.Fatalf("result during %q", phase)
			}
			var e stream.Event
			if err := json.Unmarshal([]byte(ev.data), &e); err != nil {
				t.Fatalf("result data %q: %v", ev.data, err)
			}
			if st.seq[e.QID]+1 != e.Seq {
				t.Fatalf("gap on qid %d: %d -> %d", e.QID, st.seq[e.QID], e.Seq)
			}
			st.seq[e.QID] = e.Seq
			if e.Enter {
				st.members[e.QID][e.OID] = true
			} else {
				delete(st.members[e.QID], e.OID)
			}
			results++
		}
		return results < 2
	})
	if err != nil {
		t.Fatalf("readSSE: %v", err)
	}
	if !st.members[1][101] || !st.members[1][102] || st.members[1][100] {
		t.Fatalf("q1 view = %v", st.members[1])
	}
	if len(st.members[2]) != 0 {
		t.Fatalf("q2 view = %v", st.members[2])
	}
}

// TestGatewayPerQueryFilter pins ?qid= subscriptions: only that query's
// events arrive, and an unknown qid snapshots empty at seq 0.
func TestGatewayPerQueryFilter(t *testing.T) {
	tap := stream.NewTap()
	g := stream.NewGateway(tap)
	ts := newSSEServer(t, g)
	tap.Publish(1, 100, true)
	tap.Publish(2, 200, true)

	resp, err := http.Get(ts.URL + "/debug/stream?qid=2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	waitFor(t, 2*time.Second, func() bool { return tap.Subscribers() == 1 })
	tap.Publish(1, 101, true) // must not reach the qid=2 client
	tap.Publish(2, 201, true)
	var snaps, results int
	readSSE(bufio.NewReader(resp.Body), func(ev sseEvent) bool {
		switch ev.name {
		case "snapshot":
			snaps++
			var e stream.SnapshotEntry
			json.Unmarshal([]byte(ev.data), &e)
			if e.QID != 2 {
				t.Fatalf("snapshot for qid %d", e.QID)
			}
		case "result":
			var e stream.Event
			json.Unmarshal([]byte(ev.data), &e)
			if e.QID != 2 {
				t.Fatalf("leaked event for qid %d", e.QID)
			}
			results++
		}
		return results < 1
	})
	if snaps != 1 {
		t.Fatalf("snapshots = %d, want 1", snaps)
	}

	if resp, err := http.Get(ts.URL + "/debug/stream?qid=bogus"); err == nil {
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad qid status = %d", resp.StatusCode)
		}
		resp.Body.Close()
	}
}

// TestGatewayStalledReaderEvicted proves end-to-end back-pressure: an SSE
// client that stops reading fills its subscriber buffer, is evicted, and
// the publisher (the engine side) never blocks; the client reconnects and
// re-snapshots.
func TestGatewayStalledReaderEvicted(t *testing.T) {
	tap := stream.NewTap()
	g := stream.NewGateway(tap)
	g.WriteTimeout = 200 * time.Millisecond
	ts := newSSEServer(t, g)

	resp, err := http.Get(ts.URL + "/debug/stream?qid=1&buf=2")
	if err != nil {
		t.Fatal(err)
	}
	// Read through the live marker so the subscription is registered,
	// then stall: never read again.
	br := bufio.NewReader(resp.Body)
	readSSE(br, func(ev sseEvent) bool { return ev.name != "live" })

	// Publish from the "engine": each call must return promptly even
	// though the client is stalled. Keep publishing until the tap reports
	// the eviction (the gateway goroutine needs to block on the dead
	// socket first, so a fixed small count would race).
	deadline := time.Now().Add(5 * time.Second)
	var oid int64
	for {
		// Burst so the buffer overflows while the gateway goroutine is
		// between drains or blocked in a write.
		for i := 0; i < 50; i++ {
			start := time.Now()
			tap.Publish(1, oid, true)
			if d := time.Since(start); d > 100*time.Millisecond {
				t.Fatalf("Publish blocked %v with stalled subscriber", d)
			}
			oid++
		}
		_, _, _, evictions := tap.Stats()
		if evictions >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("stalled subscriber never evicted")
		}
	}
	resp.Body.Close()

	// The tap side is already detached; the handler exits once it notices
	// (write failure or eviction drain).
	waitFor(t, 2*time.Second, func() bool { return tap.Subscribers() == 0 })

	// Reconnect: fresh snapshot reflecting everything published.
	resp2, err := http.Get(ts.URL + "/debug/stream?qid=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var snap stream.SnapshotEntry
	readSSE(bufio.NewReader(resp2.Body), func(ev sseEvent) bool {
		if ev.name == "snapshot" {
			json.Unmarshal([]byte(ev.data), &snap)
			return false
		}
		return true
	})
	if snap.Seq != uint64(oid) || len(snap.Members) != int(oid) {
		t.Fatalf("re-snapshot seq=%d members=%d, want %d", snap.Seq, len(snap.Members), oid)
	}
}

func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not met in time")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestGatewayCostBoundary pins the encode-boundary charging rule: every
// byte the gateway writes — snapshots, markers, deltas, heartbeats — is
// charged to the cost hook and counted by the egress counter, exactly.
func TestGatewayCostBoundary(t *testing.T) {
	tap := stream.NewTap()
	g := stream.NewGateway(tap)
	g.Heartbeat = 10 * time.Millisecond
	var hooked int64
	g.SetCostHook(func(b int) { hooked += int64(b) })
	reg := obs.NewRegistry()
	g.Instrument(reg)

	tap.Publish(1, 100, true)
	tap.Publish(1, 101, true)

	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest("GET", "/debug/stream", nil).WithContext(ctx)
	rw := httptest.NewRecorder()
	mux := http.NewServeMux()
	stream.Attach(mux, g)
	done := make(chan struct{})
	go func() {
		mux.ServeHTTP(rw, req)
		close(done)
	}()
	// Let the handler emit the snapshot and some heartbeats, then hang up.
	time.Sleep(50 * time.Millisecond)
	cancel()
	<-done

	if rw.Body.Len() == 0 {
		t.Fatal("no SSE output")
	}
	if hooked != int64(rw.Body.Len()) {
		t.Fatalf("cost hook charged %d bytes, gateway wrote %d", hooked, rw.Body.Len())
	}
}

// TestGatewayDisabled pins the nil-gateway 404.
func TestGatewayDisabled(t *testing.T) {
	mux := http.NewServeMux()
	stream.Attach(mux, nil)
	rw := httptest.NewRecorder()
	mux.ServeHTTP(rw, httptest.NewRequest("GET", "/debug/stream", nil))
	if rw.Code != http.StatusNotFound {
		t.Fatalf("nil gateway status = %d", rw.Code)
	}
}
