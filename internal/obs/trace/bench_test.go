package trace

import "testing"

// The acceptance number for this package (ISSUE 4): the disabled path —
// tracing compiled into the hot uplink path but turned off — must stay in
// the low single-digit nanoseconds, like the nil-metrics path in
// internal/obs. Results are recorded in BENCH_PR4.json and EXPERIMENTS.md.

// BenchmarkTraceEventDisabled is the hot-path cost with tracing off: a nil
// *Recorder, exactly as the server runs when no recorder is configured.
func BenchmarkTraceEventDisabled(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Event(ID(i), KindIngress, "server", 7, 3, "VelocityReport")
	}
}

// BenchmarkTraceEventEnabled is the recording cost with tracing on: one
// event allocation, one atomic add, one atomic pointer store.
func BenchmarkTraceEventEnabled(b *testing.B) {
	r := NewRecorder(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Event(ID(i), KindIngress, "server", 7, 3, "VelocityReport")
	}
}

// BenchmarkNextIDDisabled is the ingress-point cost of minting a trace ID
// with tracing off.
func BenchmarkNextIDDisabled(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = r.NextID()
	}
}

func BenchmarkTraceEventEnabledParallel(b *testing.B) {
	r := NewRecorder(4096)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			r.Event(1, KindIngress, "server", 7, 3, "VelocityReport")
		}
	})
}
