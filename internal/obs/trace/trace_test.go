package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestNilRecorderIsInert(t *testing.T) {
	var r *Recorder
	r.Event(1, KindIngress, "server", 1, 2, "x") // must not panic
	if got := r.NextID(); got != 0 {
		t.Fatalf("nil NextID = %d, want 0", got)
	}
	if got := r.Events(Filter{}); got != nil {
		t.Fatalf("nil Events = %v, want nil", got)
	}
	if got := r.Causal(1, 1); got != nil {
		t.Fatalf("nil Causal = %v, want nil", got)
	}
	if r.Cap() != 0 || r.Recorded() != 0 {
		t.Fatalf("nil Cap/Recorded = %d/%d, want 0/0", r.Cap(), r.Recorded())
	}
}

func TestNewRecorderRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, DefaultSize}, {-5, DefaultSize}, {1, 1}, {2, 2}, {3, 4}, {100, 128}, {4096, 4096},
	} {
		if got := NewRecorder(tc.in).Cap(); got != tc.want {
			t.Errorf("NewRecorder(%d).Cap() = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestNextIDMonotonic(t *testing.T) {
	r := NewRecorder(64)
	a, b := r.NextID(), r.NextID()
	if a == 0 || b != a+1 {
		t.Fatalf("NextID sequence %d, %d", a, b)
	}
}

func TestEventsOrderAndFilter(t *testing.T) {
	r := NewRecorder(64)
	t1, t2 := r.NextID(), r.NextID()
	r.Event(t1, KindIngress, "server", 7, 0, "VelocityReport")
	r.Event(t1, KindTable, "server", 7, 0, "FOT refresh")
	r.Event(t1, KindBroadcast, "server", 7, 3, "VelocityChange")
	r.Event(t2, KindIngress, "server", 9, 0, "CellChangeReport")
	r.Event(0, KindNote, "harness", 0, 0, "untraced")

	all := r.Events(Filter{})
	if len(all) != 5 {
		t.Fatalf("got %d events, want 5", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i].Seq <= all[i-1].Seq {
			t.Fatalf("events out of order: %v", all)
		}
	}
	if got := r.Events(Filter{Trace: t1}); len(got) != 3 {
		t.Fatalf("trace filter: got %d, want 3", len(got))
	}
	if got := r.Events(Filter{OID: 9}); len(got) != 1 || got[0].Trace != t2 {
		t.Fatalf("oid filter: got %v", got)
	}
	if got := r.Events(Filter{Kind: KindBroadcast}); len(got) != 1 || got[0].QID != 3 {
		t.Fatalf("kind filter: got %v", got)
	}
	if got := r.Events(Filter{Actor: "harness"}); len(got) != 1 {
		t.Fatalf("actor filter: got %v", got)
	}
	if got := r.Events(Filter{Limit: 2}); len(got) != 2 || got[1].Seq != all[4].Seq {
		t.Fatalf("limit filter should keep newest: got %v", got)
	}
}

func TestRingOverwrite(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 10; i++ {
		r.Event(ID(i+1), KindNote, "a", int64(i), 0, "")
	}
	if r.Recorded() != 10 {
		t.Fatalf("Recorded = %d, want 10", r.Recorded())
	}
	evs := r.Events(Filter{})
	if len(evs) != 4 {
		t.Fatalf("ring holds %d, want 4", len(evs))
	}
	// The newest 4 events (seq 7..10) survive.
	for i, e := range evs {
		if want := uint64(7 + i); e.Seq != want {
			t.Fatalf("slot %d has seq %d, want %d", i, e.Seq, want)
		}
	}
}

func TestCausalClosure(t *testing.T) {
	r := NewRecorder(128)
	t1, t2, t3 := r.NextID(), r.NextID(), r.NextID()
	// Chain t1 mentions query 5 only at its tail.
	r.Event(t1, KindIngress, "server", 7, 0, "VelocityReport")
	r.Event(t1, KindBroadcast, "server", 7, 0, "VelocityChange")
	r.Event(t1, KindResult, "server", 8, 5, "enter")
	// Chain t2 never touches query 5 or object 8.
	r.Event(t2, KindIngress, "server", 9, 0, "CellChangeReport")
	// Chain t3 mentions object 8 directly.
	r.Event(t3, KindIngress, "server", 8, 0, "ContainmentReport")
	// Untraced event naming query 5.
	r.Event(0, KindNote, "harness", 0, 5, "check")

	got := r.Causal(8, 5)
	if len(got) != 5 {
		t.Fatalf("Causal(8,5) = %d events, want 5 (t1 chain ×3, t3, untraced note): %v", len(got), got)
	}
	for _, e := range got {
		if e.Trace == t2 {
			t.Fatalf("unrelated chain t2 leaked into causal set: %v", got)
		}
	}
	// qid-only lookup pulls in the whole t1 chain.
	if got := r.Causal(0, 5); len(got) != 4 {
		t.Fatalf("Causal(0,5) = %d events, want 4: %v", len(got), got)
	}
	if got := r.Causal(0, 0); got != nil {
		t.Fatalf("Causal(0,0) = %v, want nil", got)
	}
}

func TestFormatAndString(t *testing.T) {
	r := NewRecorder(16)
	r.Event(3, KindBroadcast, "shard1", 7, 2, "QueryInstall")
	var buf bytes.Buffer
	Format(&buf, r.Events(Filter{}))
	out := buf.String()
	for _, want := range []string{"trace=3", "broadcast", "shard1", "oid=7", "qid=2", "QueryInstall"} {
		if !strings.Contains(out, want) {
			t.Fatalf("formatted event %q missing %q", out, want)
		}
	}
}

func TestKindJSON(t *testing.T) {
	b, err := json.Marshal(Event{Seq: 1, Kind: KindMigrate, Actor: "router"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"kind":"migrate"`) {
		t.Fatalf("kind not marshalled by name: %s", b)
	}
}

// TestConcurrentRecordAndScan exercises writers racing readers; run under
// -race this validates the lock-free ring.
func TestConcurrentRecordAndScan(t *testing.T) {
	r := NewRecorder(256)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				tid := r.NextID()
				r.Event(tid, KindIngress, "w", int64(w), int64(i%7), "spin")
			}
		}(w)
	}
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_ = r.Events(Filter{QID: 3})
				_ = r.Causal(2, 0)
			}
		}()
	}
	wg.Wait()
	if r.Recorded() != 8000 {
		t.Fatalf("Recorded = %d, want 8000", r.Recorded())
	}
	evs := r.Events(Filter{})
	if len(evs) != 256 {
		t.Fatalf("full ring scan returned %d, want 256", len(evs))
	}
}
