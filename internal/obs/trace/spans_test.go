package trace

import (
	"testing"
	"time"
)

// ev builds one event at the given nanosecond offset.
func ev(tid ID, k Kind, nanos int64) Event {
	return Event{Trace: tid, Kind: k, Nanos: nanos, Seq: uint64(nanos)}
}

// TestDecomposeFullChain pins the telescoping decomposition on a hand-built
// chain: ingress → table → broadcast → deliver, with the stage spans
// covering the end-to-end duration exactly.
func TestDecomposeFullChain(t *testing.T) {
	evs := []Event{
		ev(7, KindIngress, 1000),
		ev(7, KindTable, 1400),
		ev(7, KindTable, 1600),
		ev(7, KindBroadcast, 2100),
		ev(7, KindDeliver, 3000),
	}
	sp, ok := Decompose(evs)
	if !ok {
		t.Fatal("Decompose rejected a chain with ingress")
	}
	want := map[Stage]time.Duration{
		StageDispatch: 400, // ingress → first table
		StageTable:    200, // first table → last table
		StageFanout:   500, // last table → last fan-out
		StageDeliver:  900, // last fan-out → last deliver
	}
	for s, d := range want {
		if !sp.Present[s] {
			t.Fatalf("stage %v absent", s)
		}
		if sp.Stage[s] != d {
			t.Errorf("stage %v = %v, want %v", s, sp.Stage[s], d)
		}
	}
	if sp.E2E != 2000 {
		t.Errorf("E2E = %v, want 2000ns", sp.E2E)
	}
	var sum time.Duration
	for s := Stage(0); s < NumStages; s++ {
		if sp.Present[s] {
			sum += sp.Stage[s]
		}
	}
	if sum != sp.E2E {
		t.Errorf("telescoping identity broken: Σ stages %v != E2E %v", sum, sp.E2E)
	}
}

// TestDecomposeMissingStages: chains that skip stages (a stale-dropped
// velocity report never touches a table; a table update may cause no
// fan-out) degrade gracefully — absent stages are not Present, the
// identity over present stages still holds.
func TestDecomposeMissingStages(t *testing.T) {
	cases := []struct {
		name    string
		evs     []Event
		present []Stage
		e2e     time.Duration
	}{
		{
			name:    "ingress only",
			evs:     []Event{ev(1, KindIngress, 100)},
			present: nil,
			e2e:     0,
		},
		{
			name: "no fanout",
			evs: []Event{
				ev(2, KindIngress, 100),
				ev(2, KindTable, 300),
			},
			present: []Stage{StageDispatch, StageTable},
			e2e:     200,
		},
		{
			name: "deliver without table",
			evs: []Event{
				ev(3, KindIngress, 100),
				ev(3, KindUnicast, 400),
				ev(3, KindDeliver, 900),
			},
			present: []Stage{StageFanout, StageDeliver},
			e2e:     800,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			sp, ok := Decompose(c.evs)
			if !ok {
				t.Fatal("rejected")
			}
			wantPresent := make(map[Stage]bool)
			for _, s := range c.present {
				wantPresent[s] = true
			}
			var sum time.Duration
			for s := Stage(0); s < NumStages; s++ {
				if sp.Present[s] != wantPresent[s] {
					t.Errorf("stage %v present = %v, want %v", s, sp.Present[s], wantPresent[s])
				}
				if sp.Present[s] {
					sum += sp.Stage[s]
				}
			}
			if sp.E2E != c.e2e {
				t.Errorf("E2E = %v, want %v", sp.E2E, c.e2e)
			}
			if sum != sp.E2E {
				t.Errorf("Σ present stages %v != E2E %v", sum, sp.E2E)
			}
		})
	}
}

// TestDecomposeNoIngress: a chain whose ingress was overwritten by ring
// wraparound is rejected (ok=false), never a panic or a garbage span.
func TestDecomposeNoIngress(t *testing.T) {
	if _, ok := Decompose([]Event{ev(4, KindTable, 100), ev(4, KindDeliver, 300)}); ok {
		t.Fatal("accepted a chain without ingress")
	}
	if _, ok := Decompose(nil); ok {
		t.Fatal("accepted an empty chain")
	}
}

// TestDecomposeNonMonotoneClock: events recorded with out-of-order
// timestamps (cross-core clock skew, reordered slices) clamp to zero-length
// spans instead of going negative.
func TestDecomposeNonMonotoneClock(t *testing.T) {
	evs := []Event{
		ev(5, KindIngress, 1000),
		ev(5, KindTable, 900),     // before ingress
		ev(5, KindBroadcast, 800), // even earlier
		ev(5, KindDeliver, 950),
	}
	sp, ok := Decompose(evs)
	if !ok {
		t.Fatal("rejected")
	}
	for s := Stage(0); s < NumStages; s++ {
		if sp.Stage[s] < 0 {
			t.Fatalf("stage %v negative: %v", s, sp.Stage[s])
		}
	}
	if sp.E2E < 0 {
		t.Fatalf("E2E negative: %v", sp.E2E)
	}
}

// TestDecomposeOrderIndependent: Decompose keys on timestamps, not slice
// order, so a ring scan that interleaves traces arbitrarily still works.
func TestDecomposeOrderIndependent(t *testing.T) {
	ordered := []Event{
		ev(6, KindIngress, 1000),
		ev(6, KindTable, 1500),
		ev(6, KindBroadcast, 2000),
		ev(6, KindDeliver, 2500),
	}
	shuffled := []Event{ordered[2], ordered[0], ordered[3], ordered[1]}
	a, _ := Decompose(ordered)
	b, _ := Decompose(shuffled)
	if a != b {
		t.Fatalf("order-dependent decomposition:\n%+v\n%+v", a, b)
	}
}

// TestDecomposeAll groups a mixed ring: two complete traces, one untraced
// event, one orphan (no ingress).
func TestDecomposeAll(t *testing.T) {
	evs := []Event{
		ev(1, KindIngress, 100), ev(1, KindTable, 200),
		ev(0, KindNote, 150), // untraced: skipped silently
		ev(2, KindIngress, 300), ev(2, KindDeliver, 700),
		ev(9, KindTable, 400), // orphan: ingress lost
	}
	spans, orphans := DecomposeAll(evs)
	if len(spans) != 2 {
		t.Fatalf("decomposed %d traces, want 2", len(spans))
	}
	if orphans != 1 {
		t.Fatalf("orphans = %d, want 1", orphans)
	}
}

// TestStageString pins the stage names used in metric labels and the LAT
// table — renaming them breaks dashboards.
func TestStageString(t *testing.T) {
	want := []string{"dispatch", "table", "fanout", "deliver"}
	for s := Stage(0); s < NumStages; s++ {
		if s.String() != want[s] {
			t.Errorf("stage %d = %q, want %q", s, s.String(), want[s])
		}
	}
}
