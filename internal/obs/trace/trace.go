// Package trace is a dependency-free causal-tracing subsystem: a flight
// recorder for the MobiEyes protocol path. Components record Events — each
// tagged with a trace ID minted at an ingress point (an uplink frame
// arriving, an API call installing a query) and propagated through the
// system alongside the work it caused — into a fixed-size, lock-free ring
// buffer. When something goes wrong, the ring holds the recent past: the
// causal chain from "velocity report arrived" through "FOT refreshed" and
// "monitoring region broadcast" to "result flipped", reconstructable per
// object, per query, or per trace.
//
// Design constraints (see DESIGN.md §11):
//
//   - The disabled path must be free. Every recording method is nil-safe;
//     a nil *Recorder costs one branch (~1–2 ns), matching the nil-metrics
//     idiom of internal/obs, so tracing can compile into the hot uplink
//     path permanently and be turned on by configuration.
//   - Recording must be cheap and concurrency-safe: one atomic counter
//     bump and one atomic pointer store per event, no locks, no blocking.
//     Writers never wait for readers; readers get a consistent (if
//     slightly torn across slots) view of the recent past.
//   - Bounded memory. The ring overwrites the oldest events; Recorded()
//     minus Cap() tells how much history has been lost.
//
// The package deliberately depends on nothing but the standard library —
// object and query identifiers are plain int64s — so every layer (wire,
// remote, core, sim, obs) can import it without cycles.
package trace

import (
	"fmt"
	"io"
	"sort"
	"sync/atomic"
	"time"
)

// ID identifies one causal chain. The zero ID means "untraced": events
// recorded with it are kept but belong to no chain, and wire frames carry
// no trace field for it.
type ID uint64

// Kind classifies an event.
type Kind uint8

// Event kinds. The set mirrors the protocol's observable actions; Note is
// the escape hatch for anything else.
const (
	// KindIngress marks the birth of a trace: an uplink message entering
	// the server, or an API call (install, remove, expire).
	KindIngress Kind = iota + 1
	// KindTable is a server table mutation (FOT/SQT/RQI).
	KindTable
	// KindBroadcast is a downlink broadcast to a monitoring region.
	KindBroadcast
	// KindUnicast is a downlink unicast to one object.
	KindUnicast
	// KindResult is a differential result change (object entered or left
	// a query's result set).
	KindResult
	// KindMigrate is a cross-shard focal-object migration.
	KindMigrate
	// KindDeliver is a downlink message delivered to a client.
	KindDeliver
	// KindDrop is a message lost in transit (fault injection, full queues).
	KindDrop
	// KindNote is free-form annotation.
	KindNote
)

var kindNames = [...]string{
	"?", "ingress", "table", "broadcast", "unicast",
	"result", "migrate", "deliver", "drop", "note",
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "?"
}

// MarshalText renders the kind name in JSON and text encodings.
func (k Kind) MarshalText() ([]byte, error) { return []byte(k.String()), nil }

// UnmarshalText parses a kind name, so JSON event dumps round-trip. Unknown
// names decode to 0 ("?") rather than erroring: dumps are diagnostics, and a
// reader newer or older than the writer should still load the rest.
func (k *Kind) UnmarshalText(b []byte) error {
	s := string(b)
	for i := 1; i < len(kindNames); i++ {
		if kindNames[i] == s {
			*k = Kind(i)
			return nil
		}
	}
	*k = 0
	return nil
}

// Event is one recorded protocol action. OID and QID are 0 when the event
// concerns no particular object or query.
type Event struct {
	// Seq is the global recording order (1-based, gapless while the event
	// is still in the ring).
	Seq uint64 `json:"seq"`
	// Nanos is the wall-clock timestamp (UnixNano).
	Nanos int64 `json:"nanos"`
	// Trace is the causal chain this event belongs to (0 = untraced).
	Trace ID     `json:"trace"`
	Kind  Kind   `json:"kind"`
	Actor string `json:"actor"`
	OID   int64  `json:"oid,omitempty"`
	QID   int64  `json:"qid,omitempty"`
	Note  string `json:"note,omitempty"`
}

// String renders the event as one human-readable line.
func (e Event) String() string {
	ts := time.Unix(0, e.Nanos).UTC().Format("15:04:05.000000")
	s := fmt.Sprintf("#%-6d %s trace=%-4d %-9s %-8s", e.Seq, ts, e.Trace, e.Kind, e.Actor)
	if e.OID != 0 {
		s += fmt.Sprintf(" oid=%d", e.OID)
	}
	if e.QID != 0 {
		s += fmt.Sprintf(" qid=%d", e.QID)
	}
	if e.Note != "" {
		s += " " + e.Note
	}
	return s
}

// Recorder is the flight recorder: a power-of-two ring of atomically
// published events. All methods are safe for concurrent use, and all are
// no-ops (or return zero values) on a nil receiver.
type Recorder struct {
	mask  uint64
	seq   atomic.Uint64 // total events ever recorded
	ids   atomic.Uint64 // last minted trace ID
	slots []atomic.Pointer[Event]
}

// DefaultSize is the ring capacity NewRecorder uses for size <= 0.
const DefaultSize = 4096

// NewRecorder returns a recorder holding the most recent events. size is
// rounded up to a power of two; size <= 0 selects DefaultSize.
func NewRecorder(size int) *Recorder {
	if size <= 0 {
		size = DefaultSize
	}
	n := 1
	for n < size {
		n <<= 1
	}
	return &Recorder{mask: uint64(n - 1), slots: make([]atomic.Pointer[Event], n)}
}

// Cap returns the ring capacity (0 for nil).
func (r *Recorder) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.slots)
}

// Recorded returns the total number of events ever recorded (0 for nil);
// anything beyond Cap has been overwritten.
func (r *Recorder) Recorded() uint64 {
	if r == nil {
		return 0
	}
	return r.seq.Load()
}

// NextID mints a fresh trace ID (0 on a nil recorder — i.e. untraced).
func (r *Recorder) NextID() ID {
	if r == nil {
		return 0
	}
	return ID(r.ids.Add(1))
}

// Event records one event. This is the hot path: on a nil recorder it is a
// single branch; enabled it is one allocation, one atomic add and one
// atomic store.
func (r *Recorder) Event(tid ID, k Kind, actor string, oid, qid int64, note string) {
	if r == nil {
		return
	}
	e := &Event{
		Nanos: time.Now().UnixNano(),
		Trace: tid,
		Kind:  k,
		Actor: actor,
		OID:   oid,
		QID:   qid,
		Note:  note,
	}
	e.Seq = r.seq.Add(1)
	r.slots[e.Seq&r.mask].Store(e)
}

// Record merges one externally recorded event into the ring: the event's
// trace ID, kind, actor, entities, note and original wall-clock timestamp
// are preserved, but it is assigned a fresh local sequence number. This is
// how the cluster telemetry plane stitches worker flight-recorder batches
// into the router's ring — trace IDs are minted at the router and ride the
// wire, so merged chains line up by ID; workers ship their events ahead of
// each op reply, so merge order tracks causal order. A zero Nanos is
// stamped with the local clock.
func (r *Recorder) Record(e Event) {
	if r == nil {
		return
	}
	if e.Nanos == 0 {
		e.Nanos = time.Now().UnixNano()
	}
	ce := &e
	ce.Seq = r.seq.Add(1)
	r.slots[ce.Seq&r.mask].Store(ce)
}

// Filter selects events. Zero values mean "any"; Limit > 0 keeps only the
// newest Limit matches.
type Filter struct {
	Trace ID
	Kind  Kind
	OID   int64
	QID   int64
	Actor string
	Limit int
}

func (f Filter) match(e *Event) bool {
	if f.Trace != 0 && e.Trace != f.Trace {
		return false
	}
	if f.Kind != 0 && e.Kind != f.Kind {
		return false
	}
	if f.OID != 0 && e.OID != f.OID {
		return false
	}
	if f.QID != 0 && e.QID != f.QID {
		return false
	}
	if f.Actor != "" && e.Actor != f.Actor {
		return false
	}
	return true
}

// Events returns the matching events currently in the ring, ascending by
// sequence number. The scan is lock-free: events recorded concurrently may
// or may not appear, exactly like any live scrape.
func (r *Recorder) Events(f Filter) []Event {
	if r == nil {
		return nil
	}
	out := make([]Event, 0, 64)
	for i := range r.slots {
		e := r.slots[i].Load()
		if e != nil && f.match(e) {
			out = append(out, *e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	if f.Limit > 0 && len(out) > f.Limit {
		out = out[len(out)-f.Limit:]
	}
	return out
}

// Causal reconstructs the causal timeline around an object and/or query:
// every event that mentions them, plus every event of every trace that
// mentions them — so the full chains (ingress → table → broadcast →
// result) appear, not just the links naming the filtered entity. Either
// argument may be 0 to match on the other alone; both 0 returns nil.
func (r *Recorder) Causal(oid, qid int64) []Event {
	if r == nil || (oid == 0 && qid == 0) {
		return nil
	}
	mentions := func(e *Event) bool {
		return (oid != 0 && e.OID == oid) || (qid != 0 && e.QID == qid)
	}
	// Pass 1: the trace IDs of every chain touching the entity.
	tids := make(map[ID]struct{})
	all := make([]*Event, 0, len(r.slots))
	for i := range r.slots {
		if e := r.slots[i].Load(); e != nil {
			all = append(all, e)
			if e.Trace != 0 && mentions(e) {
				tids[e.Trace] = struct{}{}
			}
		}
	}
	// Pass 2: whole chains plus untraced direct mentions.
	var out []Event
	for _, e := range all {
		if _, chained := tids[e.Trace]; (e.Trace != 0 && chained) || mentions(e) {
			out = append(out, *e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Format writes events one per line.
func Format(w io.Writer, evs []Event) {
	for _, e := range evs {
		fmt.Fprintln(w, e.String())
	}
}
