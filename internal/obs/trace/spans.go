package trace

import "time"

// Stage is one segment of the uplink pipeline, in causal order. The
// decomposition telescopes: each stage's span runs from the end of the
// previous present stage to that stage's last event, so the present stages
// of one trace always sum exactly to its end-to-end duration.
type Stage uint8

const (
	// StageDispatch is ingress → first table mutation: trace minting, shard
	// or node routing, lock acquisition, queueing.
	StageDispatch Stage = iota
	// StageTable covers the server table mutations (FOT/SQT/RQI, migration,
	// result flips).
	StageTable
	// StageFanout covers downlink send: broadcast enumeration and unicast
	// emission into the transport.
	StageFanout
	// StageDeliver covers transport transit until the last client delivery.
	StageDeliver
	// NumStages is the number of pipeline stages.
	NumStages
)

var stageNames = [NumStages]string{"dispatch", "table", "fanout", "deliver"}

// String implements fmt.Stringer.
func (s Stage) String() string {
	if s < NumStages {
		return stageNames[s]
	}
	return "?"
}

// Spans is the per-stage decomposition of one trace. Present[s] reports
// whether the trace recorded any event of stage s; absent stages have zero
// duration and Σ(present stage durations) == E2E exactly.
type Spans struct {
	Trace   ID
	E2E     time.Duration
	Stage   [NumStages]time.Duration
	Present [NumStages]bool
}

// stageOf classifies an event kind into a pipeline stage. ok=false means the
// kind carries no timing information (ingress anchors the trace separately;
// drops and notes are annotations).
func stageOf(k Kind) (Stage, bool) {
	switch k {
	case KindTable, KindMigrate, KindResult:
		return StageTable, true
	case KindBroadcast, KindUnicast:
		return StageFanout, true
	case KindDeliver:
		return StageDeliver, true
	}
	return 0, false
}

// Decompose derives per-stage spans from one trace's events. The events may
// arrive in any order and from any subset of the pipeline — a dropped
// downlink, a disabled client, or ring overwrite simply leaves that stage
// absent. ok is false when no ingress event is present (the trace's start
// was overwritten), in which case no timing can be anchored.
//
// The construction is a cumulative-max sweep in causal stage order: let cur
// start at the ingress timestamp; for each present stage, its span ends at
// max(cur, latest event of that stage) and starts at cur. Clock
// non-monotonicity (an event stamped before the previous stage's end)
// clamps to a zero-length contribution instead of going negative, so the
// telescoping identity Σ spans == E2E holds unconditionally. Never panics.
func Decompose(evs []Event) (Spans, bool) {
	var sp Spans
	var ingress int64
	haveIngress := false
	var first, last [NumStages]int64
	for _, e := range evs {
		if e.Kind == KindIngress {
			if !haveIngress || e.Nanos < ingress {
				ingress = e.Nanos
				haveIngress = true
			}
			sp.Trace = e.Trace
			continue
		}
		s, ok := stageOf(e.Kind)
		if !ok {
			continue
		}
		if !sp.Present[s] {
			first[s], last[s] = e.Nanos, e.Nanos
			sp.Present[s] = true
		} else {
			if e.Nanos < first[s] {
				first[s] = e.Nanos
			}
			if e.Nanos > last[s] {
				last[s] = e.Nanos
			}
		}
		if sp.Trace == 0 {
			sp.Trace = e.Trace
		}
	}
	if !haveIngress {
		return Spans{}, false
	}
	cur := ingress
	if sp.Present[StageTable] {
		// Dispatch is the gap between ingress and the first table touch:
		// routing, locking, queueing. It exists only when a table event
		// anchors its end.
		lo := max64(first[StageTable], cur)
		sp.Stage[StageDispatch] = time.Duration(lo-cur) * time.Nanosecond
		sp.Present[StageDispatch] = true
		hi := max64(last[StageTable], lo)
		sp.Stage[StageTable] = time.Duration(hi-lo) * time.Nanosecond
		cur = hi
	}
	for _, s := range [...]Stage{StageFanout, StageDeliver} {
		if !sp.Present[s] {
			continue
		}
		end := max64(last[s], cur)
		sp.Stage[s] = time.Duration(end-cur) * time.Nanosecond
		cur = end
	}
	sp.E2E = time.Duration(cur-ingress) * time.Nanosecond
	return sp, true
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// DecomposeAll groups a ring scan by trace ID and decomposes each group.
// Untraced events (ID 0) and traces without an ingress are skipped; orphans
// counts the skipped trace groups. Results are in no particular order.
func DecomposeAll(evs []Event) (spans []Spans, orphans int) {
	byTrace := make(map[ID][]Event)
	for _, e := range evs {
		if e.Trace == 0 {
			continue
		}
		byTrace[e.Trace] = append(byTrace[e.Trace], e)
	}
	for _, group := range byTrace {
		sp, ok := Decompose(group)
		if !ok {
			orphans++
			continue
		}
		spans = append(spans, sp)
	}
	return spans, orphans
}
