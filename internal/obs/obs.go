// Package obs is the runtime observability layer: a dependency-free metrics
// toolkit — atomic counters, gauges, and fixed-bucket latency histograms with
// quantile estimation — behind a concurrent Registry, exposed over HTTP in
// Prometheus text-exposition format and /debug/vars-style JSON (see http.go).
//
// Design constraints, in order:
//
//  1. Nil safety. Every method works on a nil receiver: a nil *Registry
//     hands out nil metrics, and Add/Set/Observe on a nil metric are no-ops.
//     Instrumented code therefore needs no "is observability on?" branches,
//     and the serial deterministic simulation path pays nothing when no
//     registry is configured.
//  2. Hot-path cost. An enabled Counter.Add is one atomic add; an enabled
//     Histogram.Observe is two atomic adds, a short linear bucket scan, and
//     one CAS for the running sum — low tens of nanoseconds together (see
//     bench_test.go; numbers in EXPERIMENTS.md). Name lookups happen once at
//     registration, never per operation.
//  3. No dependencies. Everything is stdlib; the exposition format is
//     compatible with a real Prometheus scraper without importing one.
//
// Metric naming follows mobieyes_<layer>_<name>: layer is the package that
// owns the signal (server, remote, sim, go for runtime internals), and
// counters end in _total per Prometheus convention. Per-shard series carry a
// shard="N" label; per-message-kind series carry kind="VelocityReport" etc.
package obs

import (
	"math"
	"sync/atomic"
)

// A Counter is a monotonically increasing integer metric. The zero value is
// ready to use; a nil *Counter is a no-op.
type Counter struct {
	v atomic.Int64
}

// NewCounter returns a standalone counter, not attached to any registry.
// Use Registry.RegisterCounter to expose it later — this is how code keeps
// counting cheaply whether or not observability is configured.
func NewCounter() *Counter { return &Counter{} }

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// A Gauge is a float64 metric that can go up and down. The zero value is
// ready to use; a nil *Gauge is a no-op.
type Gauge struct {
	bits atomic.Uint64
}

// NewGauge returns a standalone gauge.
func NewGauge() *Gauge { return &Gauge{} }

// Set stores v. No-op on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds delta to the gauge.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		niu := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, niu) {
			return
		}
	}
}

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}
