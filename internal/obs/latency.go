package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"

	"mobieyes/internal/obs/trace"
)

// Metric names for the latency view's registry exposition.
const (
	metricLatencyE2E   = "mobieyes_latency_e2e_seconds"
	metricLatencyStage = "mobieyes_latency_stage_seconds"
)

// A LatencyView folds the flight recorder's causal chains into per-stage
// latency histograms: every traced uplink decomposes (trace.Decompose) into
// dispatch → table → fanout → deliver spans, each observed into an
// HDR-bucketed histogram, plus the end-to-end chain duration. The view owns
// its histograms — Instrument registers them on a registry without
// re-observing — and consumes each trace exactly once across Collect calls
// via a sequence watermark, so scraping /debug/latency repeatedly never
// double-counts.
//
// All methods are safe for concurrent use and no-ops on a nil receiver.
type LatencyView struct {
	rec *trace.Recorder

	mu        sync.Mutex
	watermark uint64 // highest ingress Seq already folded in
	stages    [trace.NumStages]*Histogram
	e2e       *Histogram
	traces    int64 // chains folded in
	partial   int64 // folded chains missing at least one stage
	orphans   int64 // chains skipped in the last Collect (ingress overwritten)
}

// NewLatencyView returns a view over rec's ring. A nil rec yields a valid
// view whose Collect is a no-op, matching the nil-recorder idiom.
func NewLatencyView(rec *trace.Recorder) *LatencyView {
	lv := &LatencyView{rec: rec}
	for s := range lv.stages {
		lv.stages[s] = NewHistogram(HDRLatencyBuckets)
	}
	lv.e2e = NewHistogram(HDRLatencyBuckets)
	return lv
}

// Instrument registers the view's histograms on reg: the end-to-end chain
// latency and one stage series per pipeline stage, labeled stage=dispatch…
// deliver. No-op on nil lv or reg.
func (lv *LatencyView) Instrument(reg *Registry) {
	if lv == nil {
		return
	}
	reg.RegisterHistogram(metricLatencyE2E, "Traced uplink end-to-end latency (ingress to last recorded pipeline event).", lv.e2e)
	for s := trace.Stage(0); s < trace.NumStages; s++ {
		reg.RegisterHistogram(metricLatencyStage, "Traced uplink pipeline stage latency.", lv.stages[s], "stage", s.String())
	}
}

// Collect folds every not-yet-consumed trace currently in the ring into the
// histograms. A trace is consumed when its ingress sequence number is above
// the watermark; traces whose ingress was overwritten by ring wraparound are
// counted as orphans and skipped. Chains still in flight fold with their
// stages so far — call Collect after quiescence for exact decompositions.
func (lv *LatencyView) Collect() {
	if lv == nil || lv.rec == nil {
		return
	}
	evs := lv.rec.Events(trace.Filter{})
	lv.mu.Lock()
	defer lv.mu.Unlock()

	byTrace := make(map[trace.ID][]trace.Event)
	ingressSeq := make(map[trace.ID]uint64)
	for _, e := range evs {
		if e.Trace == 0 {
			continue
		}
		byTrace[e.Trace] = append(byTrace[e.Trace], e)
		if e.Kind == trace.KindIngress {
			if s, ok := ingressSeq[e.Trace]; !ok || e.Seq < s {
				ingressSeq[e.Trace] = e.Seq
			}
		}
	}
	lv.orphans = 0
	mark := lv.watermark
	for tid, group := range byTrace {
		seq, ok := ingressSeq[tid]
		if !ok {
			lv.orphans++
			continue
		}
		if seq <= lv.watermark {
			continue // already folded in an earlier Collect
		}
		sp, ok := trace.Decompose(group)
		if !ok {
			continue
		}
		lv.traces++
		all := true
		for s := trace.Stage(0); s < trace.NumStages; s++ {
			if !sp.Present[s] {
				all = false
				continue
			}
			lv.stages[s].Observe(sp.Stage[s].Seconds())
		}
		if !all {
			lv.partial++
		}
		lv.e2e.Observe(sp.E2E.Seconds())
		if seq > mark {
			mark = seq
		}
	}
	lv.watermark = mark
}

// Discard advances the watermark past every trace currently in the ring
// without folding anything in. The load generator calls it at the warmup
// boundary so setup and warmup traffic is excluded from the measured stage
// decomposition.
func (lv *LatencyView) Discard() {
	if lv == nil || lv.rec == nil {
		return
	}
	evs := lv.rec.Events(trace.Filter{})
	lv.mu.Lock()
	defer lv.mu.Unlock()
	for _, e := range evs {
		if e.Kind == trace.KindIngress && e.Seq > lv.watermark {
			lv.watermark = e.Seq
		}
	}
}

// StageSnap is the exported summary of one latency histogram.
type StageSnap struct {
	Stage string  `json:"stage"`
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	P999  float64 `json:"p999"`
	Max   float64 `json:"max"`
}

func snapHistogram(name string, h *Histogram) StageSnap {
	return StageSnap{
		Stage: name,
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
		P999:  h.Quantile(0.999),
		Max:   h.Max(),
	}
}

// LatencySnap is a point-in-time summary of the view: chain counts plus the
// end-to-end and per-stage quantiles, all in seconds.
type LatencySnap struct {
	Traces  int64       `json:"traces"`
	Partial int64       `json:"partial"`
	Orphans int64       `json:"orphans"`
	E2E     StageSnap   `json:"e2e"`
	Stages  []StageSnap `json:"stages"`
}

// Snapshot collects pending traces and returns the current summary. A nil
// view returns the zero snapshot.
func (lv *LatencyView) Snapshot() LatencySnap {
	if lv == nil {
		return LatencySnap{}
	}
	lv.Collect()
	lv.mu.Lock()
	defer lv.mu.Unlock()
	snap := LatencySnap{
		Traces:  lv.traces,
		Partial: lv.partial,
		Orphans: lv.orphans,
		E2E:     snapHistogram("e2e", lv.e2e),
	}
	for s := trace.Stage(0); s < trace.NumStages; s++ {
		snap.Stages = append(snap.Stages, snapHistogram(s.String(), lv.stages[s]))
	}
	return snap
}

// fmtDur renders a latency in seconds at a human scale.
func fmtDur(sec float64) string {
	switch {
	case sec == 0:
		return "0"
	case sec < 1e-6:
		return fmt.Sprintf("%.0fns", sec*1e9)
	case sec < 1e-3:
		return fmt.Sprintf("%.2fµs", sec*1e6)
	case sec < 1:
		return fmt.Sprintf("%.2fms", sec*1e3)
	default:
		return fmt.Sprintf("%.3fs", sec)
	}
}

// WriteText writes the summary as an aligned human-readable table — the
// admin LAT command's payload.
func (lv *LatencyView) WriteText(w io.Writer) error {
	snap := lv.Snapshot()
	var err error
	pr := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	pr("traces %d  partial %d  orphans %d\n", snap.Traces, snap.Partial, snap.Orphans)
	pr("%-9s %8s %10s %10s %10s %10s %10s %10s\n",
		"stage", "count", "mean", "p50", "p90", "p99", "p99.9", "max")
	row := func(s StageSnap) {
		pr("%-9s %8d %10s %10s %10s %10s %10s %10s\n", s.Stage, s.Count,
			fmtDur(s.Mean), fmtDur(s.P50), fmtDur(s.P90), fmtDur(s.P99), fmtDur(s.P999), fmtDur(s.Max))
	}
	for _, s := range snap.Stages {
		row(s)
	}
	row(snap.E2E)
	return err
}

// AttachLatency mounts the pipeline-latency endpoint on mux:
//
//	/debug/latency    per-stage and end-to-end latency quantiles derived
//	                  from the flight recorder's causal chains
//
// ?format=json returns the LatencySnap as JSON; the default is the LAT
// command's text table. Every request folds newly recorded traces in first.
// When lv is nil (tracing disabled) the endpoint answers 404, mirroring
// /debug/events.
func AttachLatency(mux *http.ServeMux, lv *LatencyView) {
	mux.HandleFunc("/debug/latency", func(w http.ResponseWriter, req *http.Request) {
		if lv == nil {
			http.Error(w, "tracing disabled", http.StatusNotFound)
			return
		}
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(lv.Snapshot())
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		lv.WriteText(w)
	})
}
