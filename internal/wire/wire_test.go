package wire

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"mobieyes/internal/geo"
	"mobieyes/internal/grid"
	"mobieyes/internal/model"
	"mobieyes/internal/msg"
)

// sampleMessages returns one populated instance of every message kind.
func sampleMessages(rng *rand.Rand) []msg.Message {
	st := model.MotionState{Pos: geo.Pt(1.5, -2.25), Vel: geo.Vec(-60, 120.5), Tm: 0.125}
	qs := msg.QueryState{
		QID:    7,
		Focal:  9,
		State:  st,
		Region: model.CircleRegion{R: 3.5},
		Filter: model.Filter{Seed: rng.Uint64(), Permille: 750},
		MonRegion: grid.CellRange{
			Min: grid.CellID{Col: 2, Row: 3},
			Max: grid.CellID{Col: 5, Row: 6},
		},
		FocalMaxVel: 250,
	}
	qsRect := qs
	qsRect.QID = 8
	qsRect.Region = model.RectRegion{W: 4, H: 2}

	bm := msg.NewBitmap(3)
	bm.Set(0, true)
	bm.Set(2, true)

	return []msg.Message{
		msg.PositionReport{OID: 1, Pos: geo.Pt(3, 4), Tm: 0.5},
		msg.VelocityReport{OID: 2, Pos: geo.Pt(-1, 2), Vel: geo.Vec(10, -20), Tm: 1.25},
		msg.CellChangeReport{
			OID: 3, PrevCell: grid.CellID{Col: -1, Row: -1},
			NewCell: grid.CellID{Col: 4, Row: 5},
			Pos:     geo.Pt(20, 25), Vel: geo.Vec(0, 0), Tm: 2,
		},
		msg.ContainmentReport{OID: 4, QID: 7, IsTarget: true},
		msg.GroupContainmentReport{OID: 5, Focal: 9, QIDs: []model.QueryID{7, 8, 9}, Bitmap: bm},
		msg.FocalInfoResponse{OID: 6, Pos: geo.Pt(0, 0), Vel: geo.Vec(1, 1), Tm: 3},
		msg.DepartureReport{OID: 7},
		msg.Ping{Token: rng.Uint64()},
		msg.QueryInstall{Queries: []msg.QueryState{qs, qsRect}},
		msg.QueryRemove{QIDs: []model.QueryID{1, 2, 3}},
		msg.VelocityChange{Focal: 9, State: st},
		msg.VelocityChange{Focal: 9, State: st, Queries: []msg.QueryState{qs}},
		msg.FocalNotify{OID: 10, QID: 11, Install: true},
		msg.FocalInfoRequest{OID: 12},
		msg.Pong{Token: rng.Uint64()},
		msg.NodeHello{Node: 1, Proto: 3},
		msg.NodeHeartbeat{Node: 2, Seq: rng.Uint64()},
		msg.AssignRange{Epoch: 4, Node: 1, Lo: 20, Hi: 57},
		msg.Handoff{
			Seq: 9, OID: 13, Relocate: true, State: st,
			Cell: grid.CellID{Col: 4, Row: 5}, Slice: []byte{1, 2, 3, 4},
		},
		msg.HandoffAck{Seq: 9, OID: 13},
		msg.NodeOp{Seq: 10, Code: 3, Data: []byte{0xAA, 0xBB}},
		msg.NodeOpDone{Seq: 10, Code: 3, Data: []byte{0x01}},
		msg.NodeDownlink{
			Broadcast: true,
			Region: grid.CellRange{
				Min: grid.CellID{Col: 1, Row: 1},
				Max: grid.CellID{Col: 3, Row: 4},
			},
			Inner: Encode(msg.FocalNotify{OID: 10, QID: 11, Install: true}),
		},
		msg.NodeDownlink{Target: 14, Inner: Encode(msg.FocalInfoRequest{OID: 14})},
		msg.NodeTelemetry{Node: 2, Seq: 17, Payload: []byte{0x01, 0x00, 0x02, 0xFE}},
		msg.NodeStatus{
			Node: 2, Seq: rng.Uint64(), Epoch: 5, Lo: 20, Hi: 57,
			Digest: rng.Uint64(), Ops: 123,
		},
		msg.CheckpointRequest{Node: 1, Since: rng.Uint64()},
		msg.NodeCheckpoint{Node: 1, Seq: 9}, // empty delta: journal current
		msg.NodeCheckpoint{
			Node: 2, Seq: 10,
			Removed: []uint32{3, 7, 19},
			Slices:  [][]byte{{0x01, 0x00, 0x09}, {0x01, 0x00, 0x0D, 0xFF}},
		},
	}
}

// TestRoundTripAllKinds: Decode(Encode(m)) == m for every message kind.
func TestRoundTripAllKinds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, m := range sampleMessages(rng) {
		b := Encode(m)
		back, err := Decode(b)
		if err != nil {
			t.Fatalf("%v: decode: %v", m.Kind(), err)
		}
		if !messagesEqual(m, back) {
			t.Fatalf("%v: round trip mismatch:\n  in:  %#v\n  out: %#v", m.Kind(), m, back)
		}
	}
}

// messagesEqual compares messages, treating bitmaps by content.
func messagesEqual(a, b msg.Message) bool {
	ga, okA := a.(msg.GroupContainmentReport)
	gb, okB := b.(msg.GroupContainmentReport)
	if okA != okB {
		return false
	}
	if okA {
		return ga.OID == gb.OID && ga.Focal == gb.Focal &&
			reflect.DeepEqual(ga.QIDs, gb.QIDs) && ga.Bitmap.Equal(gb.Bitmap)
	}
	return reflect.DeepEqual(a, b)
}

// TestEncodedSizeMatchesSize pins the property the power model relies on:
// the declared Size() is the exact number of encoded bytes.
func TestEncodedSizeMatchesSize(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, m := range sampleMessages(rng) {
		if got := len(Encode(m)); got != m.Size() {
			t.Errorf("%v: encoded %d bytes, Size() = %d", m.Kind(), got, m.Size())
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	good := Encode(msg.PositionReport{OID: 1, Pos: geo.Pt(1, 2), Tm: 3})
	cases := map[string][]byte{
		"empty":             nil,
		"too short":         good[:8],
		"bad magic":         mutate(good, 0, 0xAA),
		"bad version":       mutate(good, 2, 99),
		"bad kind":          mutate(good, 3, 200),
		"bad length":        mutate(good, 4, byte(len(good)+5)),
		"truncated payload": good[:len(good)-4],
		"trailing bytes":    append(append([]byte(nil), good...), 0, 0),
		// A telemetry frame exists only to carry a batch: empty payloads are
		// non-canonical and rejected.
		"empty telemetry payload": Encode(msg.NodeTelemetry{Node: 1, Seq: 1}),
		// Checkpoint deltas: removal lists must be strictly ascending and
		// every slice non-empty, so each delta has exactly one encoding and a
		// truncated slice cannot silently drop a focal row.
		"checkpoint removals unsorted": Encode(msg.NodeCheckpoint{
			Node: 1, Seq: 2, Removed: []uint32{7, 3},
		}),
		"checkpoint removals duplicated": Encode(msg.NodeCheckpoint{
			Node: 1, Seq: 2, Removed: []uint32{3, 3},
		}),
		"checkpoint empty slice": Encode(msg.NodeCheckpoint{
			Node: 1, Seq: 2, Slices: [][]byte{{}},
		}),
		"checkpoint truncated": Encode(msg.NodeCheckpoint{
			Node: 1, Seq: 2, Removed: []uint32{3, 7}, Slices: [][]byte{{0x01}},
		})[:30],
	}
	for name, b := range cases {
		if _, err := Decode(b); err == nil {
			t.Errorf("%s: Decode accepted invalid input", name)
		}
	}
}

func mutate(b []byte, i int, v byte) []byte {
	out := append([]byte(nil), b...)
	out[i] = v
	return out
}

// TestDecodeRejectsLyingCounts: a count field larger than the remaining
// payload must error, not allocate or panic.
func TestDecodeRejectsLyingCounts(t *testing.T) {
	qr := Encode(msg.QueryRemove{QIDs: []model.QueryID{1}})
	// The count field sits right after the 16-byte header.
	bad := mutate(qr, 16, 0xFF)
	bad = mutate(bad, 17, 0xFF)
	if _, err := Decode(bad); err == nil {
		t.Error("Decode accepted a lying count")
	}
}

// TestDecodeRandomBytesNeverPanics is a mini-fuzz: random buffers must
// produce errors, never panics.
func TestDecodeRandomBytesNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		n := rng.Intn(200)
		b := make([]byte, n)
		rng.Read(b)
		_, _ = Decode(b) // must not panic
	}
	// Mutated valid messages must not panic either.
	for _, m := range sampleMessages(rng) {
		b := Encode(m)
		for i := 0; i < 200; i++ {
			bb := append([]byte(nil), b...)
			bb[rng.Intn(len(bb))] ^= byte(1 << rng.Intn(8))
			if rng.Intn(3) == 0 && len(bb) > 1 {
				bb = bb[:rng.Intn(len(bb))]
			}
			if got, err := Decode(bb); err == nil {
				// A flipped payload bit can still decode; that is fine —
				// it must just be a well-formed message.
				if got == nil {
					t.Fatal("nil message without error")
				}
			}
		}
	}
}

// TestRegionFallbackEncoding: unknown region implementations degrade to
// their enclosing circle.
type weirdRegion struct{}

func (weirdRegion) Contains(_, _ geo.Point) bool { return false }
func (weirdRegion) EnclosingRadius() float64     { return 2.5 }

func TestRegionFallbackEncoding(t *testing.T) {
	qs := msg.QueryState{QID: 1, Region: weirdRegion{}}
	b := Encode(msg.QueryInstall{Queries: []msg.QueryState{qs}})
	back, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	got := back.(msg.QueryInstall).Queries[0].Region
	c, ok := got.(model.CircleRegion)
	if !ok || c.R != 2.5 {
		t.Fatalf("fallback region = %#v, want CircleRegion{2.5}", got)
	}
}

func BenchmarkEncodeVelocityChange(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	m := sampleMessages(rng)[10] // VelocityChange with one query state
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Encode(m)
	}
}

func BenchmarkDecodeVelocityChange(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	buf := Encode(sampleMessages(rng)[10])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func TestPolygonRegionRoundTrip(t *testing.T) {
	poly := model.NewPolygonRegion([]geo.Point{
		geo.Pt(-2, -1), geo.Pt(2, -1), geo.Pt(0, 3),
	})
	qs := msg.QueryState{QID: 5, Focal: 6, Region: poly}
	m := msg.QueryInstall{Queries: []msg.QueryState{qs}}
	b := Encode(m)
	if len(b) != m.Size() {
		t.Fatalf("encoded %d bytes, Size() = %d", len(b), m.Size())
	}
	back, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	got := back.(msg.QueryInstall).Queries[0].Region
	gp, ok := got.(model.PolygonRegion)
	if !ok || len(gp.Vertices) != 3 || gp.Vertices[2] != geo.Pt(0, 3) {
		t.Fatalf("round trip = %#v", got)
	}
}

func TestPolygonDecodeRejectsBadCounts(t *testing.T) {
	poly := model.NewPolygonRegion([]geo.Point{geo.Pt(0, 0), geo.Pt(1, 0), geo.Pt(0, 1)})
	m := msg.QueryInstall{Queries: []msg.QueryState{{QID: 1, Region: poly}}}
	b := Encode(m)
	// The polygon vertex count sits after header(16) + count(2) + qid(4) +
	// focal(4) + motion(40) + tag(1) = 67.
	bad := mutate(b, 67, 0xFF)
	bad = mutate(bad, 68, 0xFF)
	if _, err := Decode(bad); err == nil {
		t.Error("Decode accepted a lying polygon vertex count")
	}
}

// quick-generated velocity reports round-trip exactly.
func TestQuickVelocityReportRoundTrip(t *testing.T) {
	f := func(oid int32, px, py, vx, vy, tm float64) bool {
		m := msg.VelocityReport{
			OID: model.ObjectID(oid),
			Pos: geo.Pt(px, py), Vel: geo.Vec(vx, vy), Tm: model.Time(tm),
		}
		back, err := Decode(Encode(m))
		return err == nil && back == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// quick-generated containment reports round-trip exactly.
func TestQuickContainmentRoundTrip(t *testing.T) {
	f := func(oid, qid int32, in bool) bool {
		m := msg.ContainmentReport{OID: model.ObjectID(oid), QID: model.QueryID(qid), IsTarget: in}
		back, err := Decode(Encode(m))
		return err == nil && back == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
