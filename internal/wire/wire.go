// Package wire is the binary codec for the MobiEyes protocol messages of
// internal/msg. Every message encodes to exactly msg.Message.Size() bytes —
// the same figure the power model charges — so the byte accounting of the
// simulation is the byte layout of a real deployment (internal/remote sends
// these frames over TCP).
//
// Layout: a 16-byte header (magic, version, kind, flags, payload length,
// source and destination object IDs) followed by the payload fields in
// little-endian order, sized per the constants in internal/msg. Regions
// encode as a one-byte shape tag plus two float64 parameters.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"mobieyes/internal/geo"
	"mobieyes/internal/grid"
	"mobieyes/internal/model"
	"mobieyes/internal/msg"
)

// Header layout constants.
const (
	Magic   = uint16(0xE7E5) // "mobieyes"
	Version = uint8(1)
	// TracedVersion marks a frame carrying a nonzero 8-byte trace ID
	// (little-endian) between the 16-byte header and the payload. A zero
	// trace ID always encodes as a plain Version frame — so every accepted
	// byte string still has exactly one encoding, preserving the FuzzWire
	// canonicity property — and a TracedVersion frame declaring a zero
	// trace ID is rejected.
	TracedVersion = uint8(2)
	// TraceOverhead is the extra length of a TracedVersion frame.
	TraceOverhead = 8
)

// Region shape tags.
const (
	regionCircle  = uint8(1)
	regionRect    = uint8(2)
	regionPolygon = uint8(3)
)

// ErrTruncated reports a buffer shorter than its header or declared length.
var ErrTruncated = errors.New("wire: truncated message")

// VersionError reports a frame whose header declares a protocol version this
// codec does not speak. It is a typed error so handshakes (the remote hello,
// the cluster NodeHello) can distinguish "peer speaks a different protocol
// revision" from a corrupt frame and reject it explicitly.
type VersionError struct {
	Got uint8
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("wire: unsupported version %d (speaking %d/%d)", e.Got, Version, TracedVersion)
}

// encoder appends primitive values to a buffer.
type encoder struct{ b []byte }

func (e *encoder) u8(v uint8)    { e.b = append(e.b, v) }
func (e *encoder) u16(v uint16)  { e.b = binary.LittleEndian.AppendUint16(e.b, v) }
func (e *encoder) u32(v uint32)  { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *encoder) u64(v uint64)  { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *encoder) f64(v float64) { e.u64(math.Float64bits(v)) }
func (e *encoder) boolByte(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}
func (e *encoder) point(p geo.Point)          { e.f64(p.X); e.f64(p.Y) }
func (e *encoder) vector(v geo.Vector)        { e.f64(v.X); e.f64(v.Y) }
func (e *encoder) time(t model.Time)          { e.f64(float64(t)) }
func (e *encoder) oid(id model.ObjectID)      { e.u32(uint32(id)) }
func (e *encoder) qid(id model.QueryID)       { e.u32(uint32(id)) }
func (e *encoder) cell(c grid.CellID)         { e.u32(uint32(int32(c.Col))); e.u32(uint32(int32(c.Row))) }
func (e *encoder) cellRange(r grid.CellRange) { e.cell(r.Min); e.cell(r.Max) }
func (e *encoder) filter(f model.Filter) {
	e.u64(f.Seed)
	e.u32(f.Permille)
}

// bytes appends a u32 length prefix and the raw payload.
func (e *encoder) bytes(b []byte) {
	e.u32(uint32(len(b)))
	e.b = append(e.b, b...)
}

func (e *encoder) region(r model.Region) {
	switch rr := r.(type) {
	case model.CircleRegion:
		e.u8(regionCircle)
		e.f64(rr.R)
		e.f64(0)
	case model.RectRegion:
		e.u8(regionRect)
		e.f64(rr.W)
		e.f64(rr.H)
	case model.PolygonRegion:
		e.u8(regionPolygon)
		e.u16(uint16(len(rr.Vertices)))
		for _, v := range rr.Vertices {
			e.point(v)
		}
	default:
		// Unknown shapes degrade to their enclosing circle: every consumer
		// of a Region can work with that soundly.
		e.u8(regionCircle)
		e.f64(r.EnclosingRadius())
		e.f64(0)
	}
}

func (e *encoder) motionState(s model.MotionState) {
	e.point(s.Pos)
	e.vector(s.Vel)
	e.time(s.Tm)
}

func (e *encoder) queryState(qs msg.QueryState) {
	e.qid(qs.QID)
	e.oid(qs.Focal)
	e.motionState(qs.State)
	e.region(qs.Region)
	e.filter(qs.Filter)
	e.cellRange(qs.MonRegion)
	e.f64(qs.FocalMaxVel)
}

// decoder consumes primitive values from a buffer.
type decoder struct {
	b   []byte
	off int
	err error
}

func (d *decoder) need(n int) bool {
	if d.err != nil {
		return false
	}
	if d.off+n > len(d.b) {
		d.err = ErrTruncated
		return false
	}
	return true
}

func (d *decoder) u8() uint8 {
	if !d.need(1) {
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *decoder) u16() uint16 {
	if !d.need(2) {
		return 0
	}
	v := binary.LittleEndian.Uint16(d.b[d.off:])
	d.off += 2
	return v
}

func (d *decoder) u32() uint32 {
	if !d.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *decoder) u64() uint64 {
	if !d.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *decoder) f64() float64     { return math.Float64frombits(d.u64()) }
func (d *decoder) boolByte() bool {
	// Strict: only 0 and 1 are valid, so every accepted payload has
	// exactly one encoding (found by FuzzWire's canonicity property).
	b := d.u8()
	if b > 1 && d.err == nil {
		d.err = fmt.Errorf("wire: invalid bool byte %#02x", b)
	}
	return b == 1
}
func (d *decoder) point() geo.Point { return geo.Pt(d.f64(), d.f64()) }
func (d *decoder) vector() geo.Vector {
	return geo.Vec(d.f64(), d.f64())
}
func (d *decoder) time() model.Time    { return model.Time(d.f64()) }
func (d *decoder) oid() model.ObjectID { return model.ObjectID(d.u32()) }
func (d *decoder) qid() model.QueryID  { return model.QueryID(d.u32()) }
func (d *decoder) cell() grid.CellID {
	return grid.CellID{Col: int(int32(d.u32())), Row: int(int32(d.u32()))}
}
func (d *decoder) cellRange() grid.CellRange {
	return grid.CellRange{Min: d.cell(), Max: d.cell()}
}
func (d *decoder) filter() model.Filter {
	return model.Filter{Seed: d.u64(), Permille: d.u32()}
}

// bytes consumes a u32 length prefix and that many raw bytes. Zero length
// decodes to nil so the round trip stays canonical.
func (d *decoder) bytes() []byte {
	n := int(d.u32())
	if n == 0 || !d.need(n) {
		return nil
	}
	b := make([]byte, n)
	copy(b, d.b[d.off:])
	d.off += n
	return b
}

// regionOrPolygon decodes a region including the variable-length polygon
// form.
func (d *decoder) regionVar() model.Region {
	tag := d.u8()
	switch tag {
	case regionCircle:
		a := d.f64()
		// The second word is padding (circles use one parameter, rects two);
		// it must be zero so the encoding stays canonical.
		if pad := d.u64(); pad != 0 && d.err == nil {
			d.err = fmt.Errorf("wire: nonzero circle padding %#x", pad)
		}
		return model.CircleRegion{R: a}
	case regionRect:
		return model.RectRegion{W: d.f64(), H: d.f64()}
	case regionPolygon:
		n := int(d.u16())
		if n < 3 || !d.need(n*16) {
			if d.err == nil {
				d.err = fmt.Errorf("wire: polygon with %d vertices", n)
			}
			return model.CircleRegion{}
		}
		vs := make([]geo.Point, n)
		for i := range vs {
			vs[i] = d.point()
		}
		return model.PolygonRegion{Vertices: vs}
	default:
		if d.err == nil {
			d.err = fmt.Errorf("wire: unknown region tag %d", tag)
		}
		return model.CircleRegion{}
	}
}

func (d *decoder) motionState() model.MotionState {
	return model.MotionState{Pos: d.point(), Vel: d.vector(), Tm: d.time()}
}

func (d *decoder) queryState() msg.QueryState {
	return msg.QueryState{
		QID:         d.qid(),
		Focal:       d.oid(),
		State:       d.motionState(),
		Region:      d.regionVar(),
		Filter:      d.filter(),
		MonRegion:   d.cellRange(),
		FocalMaxVel: d.f64(),
	}
}

// Encode serializes m. The result is exactly m.Size() bytes.
func Encode(m msg.Message) []byte { return EncodeTraced(m, 0) }

// EncodeTraced serializes m, carrying tid when it is nonzero: the frame is
// emitted as TracedVersion with the trace ID after the header, and the
// declared length grows by TraceOverhead. tid == 0 produces the plain
// Version encoding, byte-identical to Encode — untraced peers are
// unaffected, and Decode (which skips the trace ID) accepts both.
func EncodeTraced(m msg.Message, tid uint64) []byte {
	size := m.Size()
	ver := Version
	if tid != 0 {
		ver = TracedVersion
		size += TraceOverhead
	}
	e := &encoder{b: make([]byte, 0, size)}
	// Header: magic(2) version(1) kind(1) length(4) src(4) dst(4) = 16.
	e.u16(Magic)
	e.u8(ver)
	e.u8(uint8(m.Kind()))
	e.u32(uint32(size))
	e.u32(0) // src, assigned by the transport layer when needed
	e.u32(0) // dst
	if tid != 0 {
		e.u64(tid)
	}
	encodeBody(e, m)
	return e.b
}

func encodeBody(e *encoder, m msg.Message) {
	switch mm := m.(type) {
	case msg.PositionReport:
		e.oid(mm.OID)
		e.point(mm.Pos)
		e.time(mm.Tm)
	case msg.VelocityReport:
		e.oid(mm.OID)
		e.point(mm.Pos)
		e.vector(mm.Vel)
		e.time(mm.Tm)
	case msg.CellChangeReport:
		e.oid(mm.OID)
		e.cell(mm.PrevCell)
		e.cell(mm.NewCell)
		e.point(mm.Pos)
		e.vector(mm.Vel)
		e.time(mm.Tm)
	case msg.ContainmentReport:
		e.oid(mm.OID)
		e.qid(mm.QID)
		e.boolByte(mm.IsTarget)
	case msg.GroupContainmentReport:
		e.oid(mm.OID)
		e.oid(mm.Focal)
		e.u16(uint16(len(mm.QIDs)))
		for _, q := range mm.QIDs {
			e.qid(q)
		}
		e.b = append(e.b, mm.Bitmap.Bytes()...)
	case msg.FocalInfoResponse:
		e.oid(mm.OID)
		e.point(mm.Pos)
		e.vector(mm.Vel)
		e.time(mm.Tm)
	case msg.DepartureReport:
		e.oid(mm.OID)
	case msg.Ping:
		e.u64(mm.Token)
	case msg.Pong:
		e.u64(mm.Token)
	case msg.QueryInstall:
		e.u16(uint16(len(mm.Queries)))
		for _, qs := range mm.Queries {
			e.queryState(qs)
		}
	case msg.QueryRemove:
		e.u16(uint16(len(mm.QIDs)))
		for _, q := range mm.QIDs {
			e.qid(q)
		}
	case msg.VelocityChange:
		e.oid(mm.Focal)
		e.motionState(mm.State)
		e.u16(uint16(len(mm.Queries)))
		for _, qs := range mm.Queries {
			e.queryState(qs)
		}
	case msg.FocalNotify:
		e.oid(mm.OID)
		e.qid(mm.QID)
		e.boolByte(mm.Install)
	case msg.FocalInfoRequest:
		e.oid(mm.OID)
	case msg.NodeHello:
		e.u32(mm.Node)
		e.u16(mm.Proto)
	case msg.NodeHeartbeat:
		e.u32(mm.Node)
		e.u64(mm.Seq)
	case msg.AssignRange:
		e.u64(mm.Epoch)
		e.u32(mm.Node)
		e.u32(mm.Lo)
		e.u32(mm.Hi)
	case msg.Handoff:
		e.u64(mm.Seq)
		e.oid(mm.OID)
		e.boolByte(mm.Relocate)
		e.motionState(mm.State)
		e.cell(mm.Cell)
		e.bytes(mm.Slice)
	case msg.HandoffAck:
		e.u64(mm.Seq)
		e.oid(mm.OID)
	case msg.NodeOp:
		e.u64(mm.Seq)
		e.u8(mm.Code)
		e.bytes(mm.Data)
	case msg.NodeOpDone:
		e.u64(mm.Seq)
		e.u8(mm.Code)
		e.bytes(mm.Data)
	case msg.NodeDownlink:
		e.boolByte(mm.Broadcast)
		e.cellRange(mm.Region)
		e.oid(mm.Target)
		e.bytes(mm.Inner)
	case msg.NodeTelemetry:
		e.u32(mm.Node)
		e.u64(mm.Seq)
		e.bytes(mm.Payload)
	case msg.NodeStatus:
		e.u32(mm.Node)
		e.u64(mm.Seq)
		e.u64(mm.Epoch)
		e.u32(mm.Lo)
		e.u32(mm.Hi)
		e.u64(mm.Digest)
		e.u64(mm.Ops)
	case msg.CheckpointRequest:
		e.u32(mm.Node)
		e.u64(mm.Since)
	case msg.NodeCheckpoint:
		e.u32(mm.Node)
		e.u64(mm.Seq)
		e.u32(uint32(len(mm.Removed)))
		for _, oid := range mm.Removed {
			e.u32(oid)
		}
		e.u32(uint32(len(mm.Slices)))
		for _, s := range mm.Slices {
			e.bytes(s)
		}
	default:
		panic(fmt.Sprintf("wire: cannot encode %T", m))
	}
}

// Decode parses one message, discarding any trace ID. The buffer must
// contain the whole message (use the framing in internal/remote for
// streams).
func Decode(b []byte) (msg.Message, error) {
	m, _, err := DecodeTraced(b)
	return m, err
}

// DecodeTraced parses one message plus its trace ID: 0 for a plain Version
// frame, the carried nonzero ID for a TracedVersion frame.
func DecodeTraced(b []byte) (msg.Message, uint64, error) {
	d := &decoder{b: b}
	if magic := d.u16(); magic != Magic && d.err == nil {
		return nil, 0, fmt.Errorf("wire: bad magic %#04x", magic)
	}
	ver := d.u8()
	if ver != Version && ver != TracedVersion && d.err == nil {
		return nil, 0, &VersionError{Got: ver}
	}
	kind := msg.Kind(d.u8())
	length := d.u32()
	d.u32() // src
	d.u32() // dst
	var tid uint64
	if ver == TracedVersion {
		tid = d.u64()
		if tid == 0 && d.err == nil {
			return nil, 0, errors.New("wire: traced frame with zero trace ID")
		}
	}
	if d.err != nil {
		return nil, 0, d.err
	}
	if int(length) != len(b) {
		return nil, 0, fmt.Errorf("wire: declared length %d, buffer %d", length, len(b))
	}
	m, err := decodeBody(d, kind)
	if err != nil {
		return nil, 0, err
	}
	return m, tid, nil
}

func decodeBody(d *decoder, kind msg.Kind) (msg.Message, error) {
	b := d.b
	var m msg.Message
	switch kind {
	case msg.KindPositionReport:
		m = msg.PositionReport{OID: d.oid(), Pos: d.point(), Tm: d.time()}
	case msg.KindVelocityReport:
		m = msg.VelocityReport{OID: d.oid(), Pos: d.point(), Vel: d.vector(), Tm: d.time()}
	case msg.KindCellChangeReport:
		m = msg.CellChangeReport{
			OID: d.oid(), PrevCell: d.cell(), NewCell: d.cell(),
			Pos: d.point(), Vel: d.vector(), Tm: d.time(),
		}
	case msg.KindContainmentReport:
		m = msg.ContainmentReport{OID: d.oid(), QID: d.qid(), IsTarget: d.boolByte()}
	case msg.KindGroupContainmentReport:
		g := msg.GroupContainmentReport{OID: d.oid(), Focal: d.oid()}
		n := int(d.u16())
		if n > (len(b)-d.off)/4 {
			return nil, ErrTruncated
		}
		g.QIDs = make([]model.QueryID, n)
		for i := range g.QIDs {
			g.QIDs[i] = d.qid()
		}
		bm := msg.NewBitmap(n)
		raw := bm.Bytes()
		for i := range raw {
			raw[i] = d.u8()
		}
		g.Bitmap = bm
		m = g
	case msg.KindFocalInfoResponse:
		m = msg.FocalInfoResponse{OID: d.oid(), Pos: d.point(), Vel: d.vector(), Tm: d.time()}
	case msg.KindDepartureReport:
		m = msg.DepartureReport{OID: d.oid()}
	case msg.KindPing:
		m = msg.Ping{Token: d.u64()}
	case msg.KindPong:
		m = msg.Pong{Token: d.u64()}
	case msg.KindQueryInstall:
		n := int(d.u16())
		if n > (len(b)-d.off)/4 {
			return nil, ErrTruncated
		}
		qi := msg.QueryInstall{Queries: make([]msg.QueryState, n)}
		for i := range qi.Queries {
			qi.Queries[i] = d.queryState()
		}
		m = qi
	case msg.KindQueryRemove:
		n := int(d.u16())
		if n > (len(b)-d.off)/4 {
			return nil, ErrTruncated
		}
		qr := msg.QueryRemove{QIDs: make([]model.QueryID, n)}
		for i := range qr.QIDs {
			qr.QIDs[i] = d.qid()
		}
		m = qr
	case msg.KindVelocityChange:
		vc := msg.VelocityChange{Focal: d.oid(), State: d.motionState()}
		n := int(d.u16())
		if n > (len(b)-d.off)/4 {
			return nil, ErrTruncated
		}
		vc.Queries = make([]msg.QueryState, n)
		for i := range vc.Queries {
			vc.Queries[i] = d.queryState()
		}
		if len(vc.Queries) == 0 {
			vc.Queries = nil
		}
		m = vc
	case msg.KindFocalNotify:
		m = msg.FocalNotify{OID: d.oid(), QID: d.qid(), Install: d.boolByte()}
	case msg.KindFocalInfoRequest:
		m = msg.FocalInfoRequest{OID: d.oid()}
	case msg.KindNodeHello:
		m = msg.NodeHello{Node: d.u32(), Proto: d.u16()}
	case msg.KindNodeHeartbeat:
		m = msg.NodeHeartbeat{Node: d.u32(), Seq: d.u64()}
	case msg.KindAssignRange:
		m = msg.AssignRange{Epoch: d.u64(), Node: d.u32(), Lo: d.u32(), Hi: d.u32()}
	case msg.KindHandoff:
		m = msg.Handoff{
			Seq: d.u64(), OID: d.oid(), Relocate: d.boolByte(),
			State: d.motionState(), Cell: d.cell(), Slice: d.bytes(),
		}
	case msg.KindHandoffAck:
		m = msg.HandoffAck{Seq: d.u64(), OID: d.oid()}
	case msg.KindNodeOp:
		m = msg.NodeOp{Seq: d.u64(), Code: d.u8(), Data: d.bytes()}
	case msg.KindNodeOpDone:
		m = msg.NodeOpDone{Seq: d.u64(), Code: d.u8(), Data: d.bytes()}
	case msg.KindNodeDownlink:
		nd := msg.NodeDownlink{
			Broadcast: d.boolByte(), Region: d.cellRange(),
			Target: d.oid(), Inner: d.bytes(),
		}
		// Canonical addressing: broadcasts carry no unicast target, unicasts
		// carry no region — so every accepted frame has one encoding.
		if d.err == nil {
			if nd.Broadcast && nd.Target != 0 {
				return nil, fmt.Errorf("wire: broadcast node downlink with target %d", nd.Target)
			}
			if !nd.Broadcast && nd.Region != (grid.CellRange{}) {
				return nil, fmt.Errorf("wire: unicast node downlink with region %v", nd.Region)
			}
		}
		m = nd
	case msg.KindNodeTelemetry:
		nt := msg.NodeTelemetry{Node: d.u32(), Seq: d.u64(), Payload: d.bytes()}
		// A telemetry frame exists only to carry a batch: an empty payload is
		// non-canonical (the worker would simply not send the frame).
		if d.err == nil && len(nt.Payload) == 0 {
			return nil, errors.New("wire: node telemetry with empty payload")
		}
		m = nt
	case msg.KindNodeStatus:
		m = msg.NodeStatus{
			Node: d.u32(), Seq: d.u64(), Epoch: d.u64(),
			Lo: d.u32(), Hi: d.u32(), Digest: d.u64(), Ops: d.u64(),
		}
	case msg.KindCheckpointRequest:
		m = msg.CheckpointRequest{Node: d.u32(), Since: d.u64()}
	case msg.KindNodeCheckpoint:
		nc := msg.NodeCheckpoint{Node: d.u32(), Seq: d.u64()}
		n := int(d.u32())
		if n > (len(b)-d.off)/4 {
			return nil, ErrTruncated
		}
		if n > 0 {
			nc.Removed = make([]uint32, n)
			for i := range nc.Removed {
				nc.Removed[i] = d.u32()
				// Strictly ascending: one canonical encoding per removal set,
				// and the journal can apply deletions without a sort.
				if d.err == nil && i > 0 && nc.Removed[i] <= nc.Removed[i-1] {
					return nil, fmt.Errorf("wire: checkpoint removals not strictly ascending at %d", i)
				}
			}
		}
		k := int(d.u32())
		if k > (len(b)-d.off)/4 {
			return nil, ErrTruncated
		}
		if k > 0 {
			nc.Slices = make([][]byte, k)
			for i := range nc.Slices {
				nc.Slices[i] = d.bytes()
				// A zero-length slice can encode no focal row: reject it so a
				// truncated or hand-rolled checkpoint cannot silently drop state.
				if d.err == nil && len(nc.Slices[i]) == 0 {
					return nil, fmt.Errorf("wire: empty checkpoint slice at %d", i)
				}
			}
		}
		m = nc
	default:
		return nil, fmt.Errorf("wire: unknown message kind %d", kind)
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(b) {
		return nil, fmt.Errorf("wire: %d trailing bytes", len(b)-d.off)
	}
	return m, nil
}
