package wire

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

// Traced frames (TracedVersion) must round-trip the trace ID, interoperate
// with the untraced codec, and reject the one non-canonical shape: a
// version-2 frame declaring a zero trace ID.

func TestTracedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, m := range sampleMessages(rng) {
		for _, tid := range []uint64{1, 42, 1<<64 - 1} {
			b := EncodeTraced(m, tid)
			if want := m.Size() + TraceOverhead; len(b) != want {
				t.Fatalf("%T traced frame is %d bytes, want %d", m, len(b), want)
			}
			if b[2] != TracedVersion {
				t.Fatalf("%T traced frame version %d, want %d", m, b[2], TracedVersion)
			}
			got, gotTID, err := DecodeTraced(b)
			if err != nil {
				t.Fatalf("DecodeTraced(%T): %v", m, err)
			}
			if gotTID != tid {
				t.Fatalf("%T trace ID %d, want %d", m, gotTID, tid)
			}
			// The message content is unchanged by the trace field.
			if !bytes.Equal(Encode(got), Encode(m)) {
				t.Fatalf("%T content changed through traced round trip", m)
			}
			// Plain Decode accepts the traced frame, discarding the ID.
			if _, err := Decode(b); err != nil {
				t.Fatalf("Decode of traced %T: %v", m, err)
			}
		}
	}
}

func TestEncodeTracedZeroIsPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, m := range sampleMessages(rng) {
		if !bytes.Equal(EncodeTraced(m, 0), Encode(m)) {
			t.Fatalf("EncodeTraced(%T, 0) differs from Encode", m)
		}
	}
}

func TestDecodeTracedPlainFrame(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, m := range sampleMessages(rng) {
		_, tid, err := DecodeTraced(Encode(m))
		if err != nil {
			t.Fatalf("DecodeTraced(plain %T): %v", m, err)
		}
		if tid != 0 {
			t.Fatalf("plain %T frame decoded trace ID %d, want 0", m, tid)
		}
	}
}

func TestDecodeTracedZeroIDRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	m := sampleMessages(rng)[0]
	b := EncodeTraced(m, 5)
	for i := 16; i < 24; i++ {
		b[i] = 0
	}
	if _, _, err := DecodeTraced(b); err == nil || !strings.Contains(err.Error(), "zero trace ID") {
		t.Fatalf("zero-TID traced frame: err = %v, want zero-trace-ID rejection", err)
	}
}

func TestDecodeTracedTruncatedID(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := sampleMessages(rng)[0]
	b := EncodeTraced(m, 5)[:20] // header + half the trace ID
	if _, _, err := DecodeTraced(b); err == nil {
		t.Fatal("truncated traced frame decoded without error")
	}
}
