package wire

import (
	"bytes"
	"math/rand"
	"testing"

	"mobieyes/internal/msg"
)

// FuzzWire feeds arbitrary bytes to Decode. Two properties must hold:
// Decode never panics (it is the trust boundary for everything a peer
// sends), and any payload it accepts is canonical — re-encoding the
// decoded message reproduces the input bytes exactly, and the message's
// Size matches. Canonicity is what makes the protocol's byte accounting
// (network.Meter) and the simulation harness's frame relays trustworthy.
func FuzzWire(f *testing.F) {
	rng := rand.New(rand.NewSource(99))
	for i, m := range sampleMessages(rng) {
		f.Add(Encode(m))
		f.Add(EncodeTraced(m, uint64(i+1)))
	}
	// Hostile shapes: truncations, bad magic, bad version, bad kind, and a
	// traced frame declaring a zero trace ID (must be rejected — zero only
	// encodes as a plain Version frame).
	f.Add([]byte{})
	f.Add([]byte{0xE5})
	f.Add([]byte{0xE5, 0xE7, 0x01, 0x00})
	f.Add([]byte{0xE5, 0xE7, 0xFF, 0x07})
	f.Add([]byte{0x00, 0x00, 0x01, 0x02, 0x03})
	zeroTID := EncodeTraced(msg.DepartureReport{OID: 1}, 7)
	for i := 16; i < 24; i++ {
		zeroTID[i] = 0
	}
	f.Add(zeroTID)
	// A telemetry frame with a zero-length payload delta: non-canonical (the
	// worker would not send an empty batch) and must be rejected.
	f.Add(Encode(msg.NodeTelemetry{Node: 1, Seq: 1}))
	// Hostile checkpoint deltas: unsorted removals and a zero-length slice
	// are non-canonical and must be rejected.
	f.Add(Encode(msg.NodeCheckpoint{Node: 1, Seq: 2, Removed: []uint32{9, 4}}))
	f.Add(Encode(msg.NodeCheckpoint{Node: 1, Seq: 2, Slices: [][]byte{nil}}))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, tid, err := DecodeTraced(data)
		if err != nil {
			return
		}
		wantSize := m.Size()
		if tid != 0 {
			wantSize += TraceOverhead
		}
		if wantSize != len(data) {
			t.Fatalf("decoded %T (tid %d) accounts for %d bytes, wire payload is %d bytes", m, tid, wantSize, len(data))
		}
		// The src/dst header words (bytes 8–16) are routing fields owned by
		// the transport layer; Decode ignores them and Encode zeroes them.
		// Canonicity applies to everything else, including the trace ID.
		want := append([]byte{}, data...)
		for i := 8; i < 16; i++ {
			want[i] = 0
		}
		out := EncodeTraced(m, tid)
		if !bytes.Equal(out, want) {
			t.Fatalf("decode/encode of %T not canonical:\n in: %x\nout: %x", m, want, out)
		}
	})
}
