package wire

import (
	"bytes"
	"math/rand"
	"testing"
)

// FuzzWire feeds arbitrary bytes to Decode. Two properties must hold:
// Decode never panics (it is the trust boundary for everything a peer
// sends), and any payload it accepts is canonical — re-encoding the
// decoded message reproduces the input bytes exactly, and the message's
// Size matches. Canonicity is what makes the protocol's byte accounting
// (network.Meter) and the simulation harness's frame relays trustworthy.
func FuzzWire(f *testing.F) {
	rng := rand.New(rand.NewSource(99))
	for _, m := range sampleMessages(rng) {
		f.Add(Encode(m))
	}
	// Hostile shapes: truncations, bad magic, bad version, bad kind.
	f.Add([]byte{})
	f.Add([]byte{0xE5})
	f.Add([]byte{0xE5, 0xE7, 0x01, 0x00})
	f.Add([]byte{0xE5, 0xE7, 0xFF, 0x07})
	f.Add([]byte{0x00, 0x00, 0x01, 0x02, 0x03})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return
		}
		if got := m.Size(); got != len(data) {
			t.Fatalf("decoded %T reports Size %d, wire payload is %d bytes", m, got, len(data))
		}
		// The src/dst header words (bytes 8–16) are routing fields owned by
		// the transport layer; Decode ignores them and Encode zeroes them.
		// Canonicity applies to everything else.
		want := append([]byte{}, data...)
		for i := 8; i < 16; i++ {
			want[i] = 0
		}
		out := Encode(m)
		if !bytes.Equal(out, want) {
			t.Fatalf("decode/encode of %T not canonical:\n in: %x\nout: %x", m, want, out)
		}
	})
}
