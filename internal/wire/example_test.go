package wire_test

import (
	"fmt"

	"mobieyes/internal/geo"
	"mobieyes/internal/model"
	"mobieyes/internal/msg"
	"mobieyes/internal/wire"
)

// ExampleEncode shows that a message's declared Size is its exact encoded
// length — the property that ties the power model to real bytes.
func ExampleEncode() {
	m := msg.VelocityReport{
		OID: 7,
		Pos: geo.Pt(12.5, 40),
		Vel: geo.Vec(-60, 30),
		Tm:  model.FromSeconds(90),
	}
	b := wire.Encode(m)
	fmt.Println("encoded bytes == Size():", len(b) == m.Size())

	back, _ := wire.Decode(b)
	fmt.Println("round trip:", back == m)
	// Output:
	// encoded bytes == Size(): true
	// round trip: true
}
