package history

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
)

// Summary is the JSON shape of the store-level statistics.
type Summary struct {
	Bytes        int   `json:"bytes"`
	Records      int   `json:"records"`
	Appended     int64 `json:"appended_total"`
	BytesWritten int64 `json:"bytes_written_total"`
	EvictedSegs  int64 `json:"evicted_segments_total"`
	EvictedRecs  int64 `json:"evicted_records_total"`
}

// Summarize returns the store-level statistics.
func (s *Store) Summarize() Summary {
	appended, written, esegs, erecs := s.Stats()
	return Summary{
		Bytes: s.Bytes(), Records: s.Records(),
		Appended: appended, BytesWritten: written,
		EvictedSegs: esegs, EvictedRecs: erecs,
	}
}

// Attach mounts the history endpoint on mux:
//
//	/debug/history    the append-only replay store
//
// Query parameters (all optional):
//
//	qid=N        replay query N's timeline (enter/leave transitions plus
//	             its install/remove marks)
//	oid=N        replay object N's position samples
//	format=json  JSON instead of the human-readable text dump
//	format=raw   the raw log bytes (segments as written) — feed this to
//	             cmd/mobiviz -replay; qid/oid filters are ignored
//
// With no scope parameter the endpoint reports store statistics. When s is
// nil (history disabled) it answers 404 so probes can distinguish "no
// store" from "no records".
func Attach(mux *http.ServeMux, s *Store) {
	mux.HandleFunc("/debug/history", func(w http.ResponseWriter, req *http.Request) {
		if s == nil {
			http.Error(w, "history disabled", http.StatusNotFound)
			return
		}
		q := req.URL.Query()
		if q.Get("format") == "raw" {
			w.Header().Set("Content-Type", "application/octet-stream")
			s.WriteTo(w)
			return
		}
		asJSON := q.Get("format") == "json"
		intParam := func(key string) (int64, bool, bool) {
			v := q.Get(key)
			if v == "" {
				return 0, false, true
			}
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil || n < 0 {
				http.Error(w, "bad "+key+" parameter", http.StatusBadRequest)
				return 0, false, false
			}
			return n, true, true
		}
		qid, hasQID, ok := intParam("qid")
		if !ok {
			return
		}
		oid, hasOID, ok := intParam("oid")
		if !ok {
			return
		}

		var recs []Record
		switch {
		case hasQID:
			recs = s.Replay(qid)
		case hasOID:
			for _, r := range s.All() {
				if r.Kind == KindPos && r.OID == oid {
					recs = append(recs, r)
				}
			}
		default:
			// Store statistics only.
			if asJSON {
				w.Header().Set("Content-Type", "application/json; charset=utf-8")
				enc := json.NewEncoder(w)
				enc.SetIndent("", "  ")
				enc.Encode(s.Summarize())
				return
			}
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			sum := s.Summarize()
			fmt.Fprintf(w, "history %d bytes, %d records (%d appended, %d B written, evicted %d segments / %d records)\n",
				sum.Bytes, sum.Records, sum.Appended, sum.BytesWritten, sum.EvictedSegs, sum.EvictedRecs)
			return
		}

		if asJSON {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			if recs == nil {
				recs = []Record{}
			}
			enc.Encode(recs)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		WriteText(w, recs)
	})
}

// WriteText renders records as one line each, the text twin of the JSON
// exposition (also used by the admin HIST command).
func WriteText(w interface{ Write([]byte) (int, error) }, recs []Record) {
	for _, r := range recs {
		switch r.Kind {
		case KindEnter, KindLeave:
			fmt.Fprintf(w, "t %.6f qid %d seq %d oid %d %s\n", r.T, r.QID, r.Seq, r.OID, r.Kind)
		case KindPos:
			fmt.Fprintf(w, "t %.6f oid %d pos %.6f %.6f\n", r.T, r.OID, r.X, r.Y)
		case KindQuery:
			fmt.Fprintf(w, "t %.6f qid %d %s focal %d radius %.6f\n", r.T, r.QID, r.Kind, r.OID, r.X)
		case KindQueryRemove:
			fmt.Fprintf(w, "t %.6f qid %d %s\n", r.T, r.QID, r.Kind)
		}
	}
}
