// Package history is the append-only replay store behind the live result
// gateway (DESIGN.md §17): a size-bounded log of result transitions, object
// position samples and query lifecycle marks, encoded as versioned
// little-endian segments in the style of the wire codecs (internal/wire).
// It makes the system's past queryable — replaying a query's enter/leave
// timeline, or reconstructing the visible state of a run frame by frame
// (cmd/mobiviz -replay) — without ever letting history retention grow
// unbounded: the store seals fixed-size segments and evicts the oldest
// whole segments once the configured byte budget is exceeded, so the log
// always holds the most recent window of the run.
//
// The store is clock-agnostic: callers stamp each record with their own
// time axis (simulated hours for the simulation, wall hours for the TCP
// server), which keeps simulation replays deterministic.
//
// Everything is safe for concurrent use; a nil *Store is a valid, disabled
// store on which every method is a no-op.
package history

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"

	"mobieyes/internal/obs"
)

// Segment framing constants. Each segment starts with an 8-byte header
// (magic, version, reserved zero pad) followed by fixed-size records; a log
// file is any concatenation of segments.
const (
	// Magic marks a segment header ("MEHL", little-endian).
	Magic = uint32(0x4C48454D)
	// Version is the current segment layout revision.
	Version = uint16(1)
	// HeaderSize is the segment header length in bytes.
	HeaderSize = 8
	// RecordSize is the fixed on-log record length in bytes: a one-byte
	// kind tag plus four little-endian 8-byte fields.
	RecordSize = 33
)

// Kind discriminates record types.
type Kind uint8

const (
	// KindEnter records an object entering a query's result set.
	KindEnter Kind = 1
	// KindLeave records an object leaving a query's result set.
	KindLeave Kind = 2
	// KindPos records an object position sample.
	KindPos Kind = 3
	// KindQuery records a query installation (focal object and region
	// radius), so replays can redraw the query without engine state.
	KindQuery Kind = 4
	// KindQueryRemove records a query uninstallation.
	KindQueryRemove Kind = 5
)

var kindNames = map[Kind]string{
	KindEnter: "enter", KindLeave: "leave", KindPos: "pos",
	KindQuery: "query", KindQueryRemove: "query-remove",
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return "unknown"
}

// Record is one log entry. Field use per kind (unused fields must be zero —
// the decoder enforces canonical zero padding, like the wire codec's region
// encoding):
//
//	KindEnter/KindLeave  T, QID, Seq, OID
//	KindPos              T, OID, X, Y
//	KindQuery            T, QID, OID (focal), X (region radius)
//	KindQueryRemove      T, QID
type Record struct {
	Kind Kind    `json:"kind"`
	T    float64 `json:"t"`
	QID  int64   `json:"qid,omitempty"`
	Seq  uint64  `json:"seq,omitempty"`
	OID  int64   `json:"oid,omitempty"`
	X    float64 `json:"x,omitempty"`
	Y    float64 `json:"y,omitempty"`
}

// ErrTruncated reports a log shorter than its framing requires.
var ErrTruncated = errors.New("history: truncated log")

// appendHeader appends a segment header to buf.
func appendHeader(buf []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, Magic)
	buf = binary.LittleEndian.AppendUint16(buf, Version)
	return binary.LittleEndian.AppendUint16(buf, 0)
}

// AppendRecord appends r's canonical encoding to buf. It panics on a record
// whose zero-padding invariant is violated — writers construct records via
// the Store's typed append methods, so a violation is a programmer error.
func AppendRecord(buf []byte, r Record) []byte {
	var a, b, c uint64
	switch r.Kind {
	case KindEnter, KindLeave:
		if r.X != 0 || r.Y != 0 {
			panic("history: result record with position fields")
		}
		a, b, c = uint64(r.QID), r.Seq, uint64(r.OID)
	case KindPos:
		if r.QID != 0 || r.Seq != 0 {
			panic("history: position record with query fields")
		}
		a, b, c = uint64(r.OID), math.Float64bits(r.X), math.Float64bits(r.Y)
	case KindQuery:
		if r.Seq != 0 || r.Y != 0 {
			panic("history: query record with sequence fields")
		}
		a, b, c = uint64(r.QID), uint64(r.OID), math.Float64bits(r.X)
	case KindQueryRemove:
		if r.Seq != 0 || r.OID != 0 || r.X != 0 || r.Y != 0 {
			panic("history: query-remove record with payload fields")
		}
		a = uint64(r.QID)
	default:
		panic(fmt.Sprintf("history: cannot encode kind %d", r.Kind))
	}
	buf = append(buf, byte(r.Kind))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(r.T))
	buf = binary.LittleEndian.AppendUint64(buf, a)
	buf = binary.LittleEndian.AppendUint64(buf, b)
	buf = binary.LittleEndian.AppendUint64(buf, c)
	return buf
}

// decodeRecord decodes one record from b (len >= RecordSize), enforcing the
// canonical zero padding of unused fields.
func decodeRecord(b []byte) (Record, error) {
	r := Record{Kind: Kind(b[0])}
	r.T = math.Float64frombits(binary.LittleEndian.Uint64(b[1:]))
	a := binary.LittleEndian.Uint64(b[9:])
	bb := binary.LittleEndian.Uint64(b[17:])
	c := binary.LittleEndian.Uint64(b[25:])
	switch r.Kind {
	case KindEnter, KindLeave:
		r.QID, r.Seq, r.OID = int64(a), bb, int64(c)
	case KindPos:
		r.OID = int64(a)
		r.X = math.Float64frombits(bb)
		r.Y = math.Float64frombits(c)
	case KindQuery:
		r.QID, r.OID = int64(a), int64(bb)
		r.X = math.Float64frombits(c)
	case KindQueryRemove:
		r.QID = int64(a)
		if bb != 0 || c != 0 {
			return Record{}, fmt.Errorf("history: non-canonical query-remove padding")
		}
	default:
		return Record{}, fmt.Errorf("history: unknown record kind %d", b[0])
	}
	return r, nil
}

// EncodeLog encodes records as one self-contained segment — the canonical
// byte form of a timeline, used by the replay oracle to compare two
// timelines for byte-identical equality.
func EncodeLog(recs []Record) []byte {
	buf := appendHeader(make([]byte, 0, HeaderSize+len(recs)*RecordSize))
	for _, r := range recs {
		buf = AppendRecord(buf, r)
	}
	return buf
}

// DecodeLog decodes a concatenation of segments back into records.
func DecodeLog(data []byte) ([]Record, error) {
	var recs []Record
	for len(data) > 0 {
		if len(data) < HeaderSize {
			return nil, ErrTruncated
		}
		if m := binary.LittleEndian.Uint32(data); m != Magic {
			return nil, fmt.Errorf("history: bad segment magic %#x", m)
		}
		if v := binary.LittleEndian.Uint16(data[4:]); v != Version {
			return nil, fmt.Errorf("history: unsupported segment version %d (speaking %d)", v, Version)
		}
		if pad := binary.LittleEndian.Uint16(data[6:]); pad != 0 {
			return nil, fmt.Errorf("history: non-canonical header padding %#x", pad)
		}
		data = data[HeaderSize:]
		for len(data) > 0 {
			if len(data) >= HeaderSize && binary.LittleEndian.Uint32(data) == Magic {
				break // next segment
			}
			if len(data) < RecordSize {
				return nil, ErrTruncated
			}
			r, err := decodeRecord(data)
			if err != nil {
				return nil, err
			}
			recs = append(recs, r)
			data = data[RecordSize:]
		}
	}
	return recs, nil
}

// ReadLog decodes a whole log stream (e.g. a file written by WriteTo or
// /debug/history?format=raw).
func ReadLog(r io.Reader) ([]Record, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return DecodeLog(data)
}

// segment is one sealed or active run of encoded records.
type segment struct {
	buf  []byte
	recs int
}

// Store is the size-bounded append-only log. Appends go to the active
// segment; at SegmentBytes the segment is sealed and a new one starts; when
// the total exceeds the byte budget, the oldest sealed segments are evicted
// whole (the active segment is never evicted).
type Store struct {
	mu       sync.Mutex
	maxBytes int
	segBytes int
	segs     []*segment
	total    int

	appends      obs.Counter // records appended over the store's lifetime
	bytesWritten obs.Counter // log bytes written (headers included)
	evictedSegs  obs.Counter
	evictedRecs  obs.Counter

	// costHook, when set, is called with the exact log bytes produced by
	// each append (record plus any segment header started for it) — the
	// encode boundary, mirroring the on-the-wire rule the remote transport
	// uses for frames (DESIGN.md §12).
	costHook func(bytes int)
}

// DefaultSegmentBytes is the sealed-segment size.
const DefaultSegmentBytes = 64 << 10

// NewStore returns a store bounded to maxBytes of log (minimum one
// segment). maxBytes <= 0 selects a 16 MiB default.
func NewStore(maxBytes int) *Store {
	if maxBytes <= 0 {
		maxBytes = 16 << 20
	}
	seg := DefaultSegmentBytes
	if seg > maxBytes {
		seg = maxBytes
	}
	return &Store{maxBytes: maxBytes, segBytes: seg}
}

// SetCostHook installs the encode-boundary charging hook (e.g.
// cost.Accountant.HistoryAppend). Call before traffic; nil disables.
func (s *Store) SetCostHook(fn func(bytes int)) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.costHook = fn
	s.mu.Unlock()
}

// append encodes r into the active segment under the lock.
func (s *Store) append(r Record) {
	if s == nil {
		return
	}
	s.mu.Lock()
	wrote := 0
	cur := (*segment)(nil)
	if n := len(s.segs); n > 0 {
		cur = s.segs[n-1]
	}
	if cur == nil || len(cur.buf)+RecordSize > s.segBytes {
		cur = &segment{buf: appendHeader(make([]byte, 0, s.segBytes))}
		s.segs = append(s.segs, cur)
		s.total += HeaderSize
		wrote += HeaderSize
	}
	cur.buf = AppendRecord(cur.buf, r)
	cur.recs++
	s.total += RecordSize
	wrote += RecordSize
	// Evict oldest sealed segments past the budget; the active segment
	// always survives, so the store degrades to "most recent window" and
	// never blocks or fails the append path.
	for s.total > s.maxBytes && len(s.segs) > 1 {
		old := s.segs[0]
		s.segs = s.segs[1:]
		s.total -= len(old.buf)
		s.evictedSegs.Add(1)
		s.evictedRecs.Add(int64(old.recs))
	}
	s.appends.Add(1)
	s.bytesWritten.Add(int64(wrote))
	hook := s.costHook
	s.mu.Unlock()
	if hook != nil {
		hook(wrote)
	}
}

// AppendResult records a result transition: at time t, object oid entered
// (enter=true) or left query qid's result set as its seq'th change.
func (s *Store) AppendResult(t float64, qid int64, seq uint64, oid int64, enter bool) {
	k := KindLeave
	if enter {
		k = KindEnter
	}
	s.append(Record{Kind: k, T: t, QID: qid, Seq: seq, OID: oid})
}

// AppendPos records an object position sample.
func (s *Store) AppendPos(t float64, oid int64, x, y float64) {
	s.append(Record{Kind: KindPos, T: t, OID: oid, X: x, Y: y})
}

// AppendQuery records a query installation with its focal object and region
// radius.
func (s *Store) AppendQuery(t float64, qid, focal int64, radius float64) {
	s.append(Record{Kind: KindQuery, T: t, QID: qid, OID: focal, X: radius})
}

// AppendQueryRemove records a query uninstallation.
func (s *Store) AppendQueryRemove(t float64, qid int64) {
	s.append(Record{Kind: KindQueryRemove, T: t, QID: qid})
}

// Bytes returns the current log size in bytes (headers included).
func (s *Store) Bytes() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// Records returns the number of records currently retained.
func (s *Store) Records() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, seg := range s.segs {
		n += seg.recs
	}
	return n
}

// Stats returns lifetime append and eviction counts: records appended, log
// bytes written, segments evicted, and records lost to eviction.
func (s *Store) Stats() (appended, bytesWritten, evictedSegs, evictedRecs int64) {
	if s == nil {
		return 0, 0, 0, 0
	}
	return s.appends.Value(), s.bytesWritten.Value(),
		s.evictedSegs.Value(), s.evictedRecs.Value()
}

// snapshotLocked copies the retained log bytes.
func (s *Store) snapshotBytes() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]byte, 0, s.total)
	for _, seg := range s.segs {
		out = append(out, seg.buf...)
	}
	return out
}

// WriteTo writes the retained log (a concatenation of segments) to w.
func (s *Store) WriteTo(w io.Writer) (int64, error) {
	if s == nil {
		return 0, nil
	}
	n, err := w.Write(s.snapshotBytes())
	return int64(n), err
}

// All returns every retained record in append order.
func (s *Store) All() []Record {
	if s == nil {
		return nil
	}
	recs, err := DecodeLog(s.snapshotBytes())
	if err != nil {
		// The store wrote these bytes itself; a decode failure is a
		// corrupted-invariant programmer error, not an input error.
		panic(err)
	}
	return recs
}

// Replay returns qid's retained records in append order: its enter/leave
// transitions plus its query lifecycle marks.
func (s *Store) Replay(qid int64) []Record {
	var out []Record
	for _, r := range s.All() {
		if r.QID == qid && r.Kind != KindPos {
			out = append(out, r)
		}
	}
	return out
}

// Timeline returns qid's retained enter/leave transitions in append order —
// the query's differential result timeline.
func (s *Store) Timeline(qid int64) []Record {
	var out []Record
	for _, r := range s.Replay(qid) {
		if r.Kind == KindEnter || r.Kind == KindLeave {
			out = append(out, r)
		}
	}
	return out
}

// Instrument registers the store's gauges and counters on reg:
//
//	mobieyes_history_bytes             current retained log size
//	mobieyes_history_records           current retained record count
//	mobieyes_history_appends_total     records appended (lifetime)
//	mobieyes_history_bytes_total       log bytes written (lifetime)
//	mobieyes_history_evicted_total{what="segments"|"records"}
//
// No-op when s or reg is nil.
func (s *Store) Instrument(reg *obs.Registry) {
	if s == nil || reg == nil {
		return
	}
	reg.GaugeFunc("mobieyes_history_bytes",
		"Current retained history log size in bytes.",
		func() float64 { return float64(s.Bytes()) })
	reg.GaugeFunc("mobieyes_history_records",
		"Current retained history record count.",
		func() float64 { return float64(s.Records()) })
	reg.RegisterCounter("mobieyes_history_appends_total",
		"History records appended over the store's lifetime.", &s.appends)
	reg.RegisterCounter("mobieyes_history_bytes_total",
		"History log bytes written over the store's lifetime.", &s.bytesWritten)
	reg.RegisterCounter("mobieyes_history_evicted_total",
		"History log evictions by unit.", &s.evictedSegs, "what", "segments")
	reg.RegisterCounter("mobieyes_history_evicted_total",
		"History log evictions by unit.", &s.evictedRecs, "what", "records")
}
