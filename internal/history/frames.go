package history

import "math"

// FrameQuery is a query visible in a reconstructed frame.
type FrameQuery struct {
	Focal  int64   // focal object ID
	Radius float64 // region radius
}

// Frame is the visible state of the system at one recorded instant,
// reconstructed purely from the history log: every known object position,
// every installed query, and each query's current result membership. It is
// what cmd/mobiviz -replay renders.
type Frame struct {
	T       float64
	Pos     map[int64][2]float64     // oid -> {x, y}
	Queries map[int64]FrameQuery     // qid -> query
	Results map[int64]map[int64]bool // qid -> result-set members
}

// Frames folds a record sequence (append order, non-decreasing T) into one
// cumulative frame per distinct timestamp. State carries forward: an object
// keeps its last sampled position, a query persists until its remove mark,
// and result membership integrates the differential enter/leave stream.
// Note the store is size-bounded — a log whose head was evicted reconstructs
// the most recent window, starting from whatever state the surviving records
// imply.
func Frames(recs []Record) []Frame {
	pos := map[int64][2]float64{}
	queries := map[int64]FrameQuery{}
	results := map[int64]map[int64]bool{}

	snapshot := func(t float64) Frame {
		f := Frame{
			T:       t,
			Pos:     make(map[int64][2]float64, len(pos)),
			Queries: make(map[int64]FrameQuery, len(queries)),
			Results: make(map[int64]map[int64]bool, len(results)),
		}
		for k, v := range pos {
			f.Pos[k] = v
		}
		for k, v := range queries {
			f.Queries[k] = v
		}
		for k, set := range results {
			m := make(map[int64]bool, len(set))
			for oid := range set {
				m[oid] = true
			}
			f.Results[k] = m
		}
		return f
	}

	var frames []Frame
	cur := math.NaN()
	for _, r := range recs {
		if r.T != cur {
			if !math.IsNaN(cur) {
				frames = append(frames, snapshot(cur))
			}
			cur = r.T
		}
		switch r.Kind {
		case KindPos:
			pos[r.OID] = [2]float64{r.X, r.Y}
		case KindQuery:
			queries[r.QID] = FrameQuery{Focal: r.OID, Radius: r.X}
			if results[r.QID] == nil {
				results[r.QID] = map[int64]bool{}
			}
		case KindQueryRemove:
			delete(queries, r.QID)
			delete(results, r.QID)
		case KindEnter:
			if results[r.QID] == nil {
				results[r.QID] = map[int64]bool{}
			}
			results[r.QID][r.OID] = true
		case KindLeave:
			delete(results[r.QID], r.OID)
		}
	}
	if !math.IsNaN(cur) {
		frames = append(frames, snapshot(cur))
	}
	return frames
}
