package history

import "testing"

// BenchmarkHistoryAppend measures the per-record append cost on the engine
// side of the tee — encode + segment bookkeeping under the store mutex.
func BenchmarkHistoryAppend(b *testing.B) {
	s := NewStore(16 << 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.AppendResult(float64(i), 1, uint64(i+1), int64(i%1000), i%2 == 0)
	}
	b.SetBytes(RecordSize)
}

// BenchmarkHistoryAppendEvicting measures append cost once the store is past
// its byte budget and evicting a segment per sealed segment — the steady
// state of a long run.
func BenchmarkHistoryAppendEvicting(b *testing.B) {
	s := NewStore(256 << 10) // 4 sealed segments
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.AppendPos(float64(i), int64(i%1000), 1.5, 2.5)
	}
	b.SetBytes(RecordSize)
}
