package history

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
)

func sampleRecords() []Record {
	return []Record{
		{Kind: KindQuery, T: 0, QID: 1, OID: 7, X: 0.25},
		{Kind: KindPos, T: 0, OID: 7, X: 1.5, Y: 2.5},
		{Kind: KindPos, T: 0, OID: 9, X: 3.25, Y: 4.75},
		{Kind: KindEnter, T: 0.5, QID: 1, Seq: 1, OID: 9},
		{Kind: KindPos, T: 1, OID: 9, X: 9.125, Y: 0.5},
		{Kind: KindLeave, T: 1, QID: 1, Seq: 2, OID: 9},
		{Kind: KindQueryRemove, T: 1.5, QID: 1},
	}
}

func TestCodecRoundTrip(t *testing.T) {
	recs := sampleRecords()
	buf := EncodeLog(recs)
	if want := HeaderSize + len(recs)*RecordSize; len(buf) != want {
		t.Fatalf("encoded length = %d, want %d", len(buf), want)
	}
	got, err := DecodeLog(buf)
	if err != nil {
		t.Fatalf("DecodeLog: %v", err)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, recs)
	}
	// A log is any concatenation of segments.
	got2, err := DecodeLog(append(append([]byte{}, buf...), buf...))
	if err != nil {
		t.Fatalf("DecodeLog(2 segments): %v", err)
	}
	if len(got2) != 2*len(recs) {
		t.Fatalf("2-segment decode = %d records, want %d", len(got2), 2*len(recs))
	}
}

func TestDecodeRejectsNonCanonical(t *testing.T) {
	good := EncodeLog(sampleRecords())

	cases := map[string]func([]byte) []byte{
		"bad magic":   func(b []byte) []byte { b[0] ^= 0xff; return b },
		"bad version": func(b []byte) []byte { binary.LittleEndian.PutUint16(b[4:], 99); return b },
		"header pad":  func(b []byte) []byte { b[6] = 1; return b },
		"unknown kind": func(b []byte) []byte {
			b[HeaderSize] = 42
			return b
		},
		"truncated header": func(b []byte) []byte { return b[:4] },
		"truncated record": func(b []byte) []byte { return b[:HeaderSize+RecordSize-1] },
		"query-remove padding": func(b []byte) []byte {
			// Last record is the query-remove; dirty its third field.
			off := len(b) - RecordSize + 1 + 8 + 8
			b[off] = 1
			return b
		},
	}
	for name, mutate := range cases {
		b := mutate(append([]byte{}, good...))
		if _, err := DecodeLog(b); err == nil {
			t.Errorf("%s: decode accepted non-canonical log", name)
		}
	}
}

func TestAppendRecordPanicsOnPaddingViolation(t *testing.T) {
	bad := []Record{
		{Kind: KindEnter, QID: 1, Seq: 1, OID: 2, X: 3},
		{Kind: KindPos, OID: 1, QID: 5},
		{Kind: KindQuery, QID: 1, OID: 2, X: 3, Y: 4},
		{Kind: KindQueryRemove, QID: 1, OID: 2},
		{Kind: Kind(99)},
	}
	for _, r := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("AppendRecord(%+v) did not panic", r)
				}
			}()
			AppendRecord(nil, r)
		}()
	}
}

func TestStoreReplayAndTimeline(t *testing.T) {
	s := NewStore(1 << 20)
	s.AppendQuery(0, 1, 7, 0.25)
	s.AppendQuery(0, 2, 8, 0.5)
	s.AppendPos(0, 9, 1, 2)
	s.AppendResult(0.5, 1, 1, 9, true)
	s.AppendResult(0.5, 2, 1, 9, true)
	s.AppendResult(1, 1, 2, 9, false)
	s.AppendQueryRemove(1.5, 1)

	if got := s.Records(); got != 7 {
		t.Fatalf("Records() = %d, want 7", got)
	}
	replay := s.Replay(1)
	wantKinds := []Kind{KindQuery, KindEnter, KindLeave, KindQueryRemove}
	if len(replay) != len(wantKinds) {
		t.Fatalf("Replay(1) = %d records, want %d: %+v", len(replay), len(wantKinds), replay)
	}
	for i, r := range replay {
		if r.Kind != wantKinds[i] {
			t.Fatalf("Replay(1)[%d].Kind = %v, want %v", i, r.Kind, wantKinds[i])
		}
	}
	tl := s.Timeline(1)
	if len(tl) != 2 || tl[0].Kind != KindEnter || tl[1].Kind != KindLeave {
		t.Fatalf("Timeline(1) = %+v", tl)
	}
	if tl[0].Seq != 1 || tl[1].Seq != 2 {
		t.Fatalf("Timeline(1) seqs = %d,%d want 1,2", tl[0].Seq, tl[1].Seq)
	}

	// WriteTo / ReadLog round trip reproduces the record stream exactly.
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	back, err := ReadLog(&buf)
	if err != nil {
		t.Fatalf("ReadLog: %v", err)
	}
	if !reflect.DeepEqual(back, s.All()) {
		t.Fatalf("ReadLog != All:\n got %+v\nwant %+v", back, s.All())
	}
}

func TestStoreEvictsOldestSegmentsWhole(t *testing.T) {
	// Budget of ~4 small segments; each segment holds 2 records
	// (8 + 2*33 = 74 <= 80).
	s := NewStore(320)
	s.segBytes = 80
	const n = 100
	for i := 0; i < n; i++ {
		s.AppendPos(float64(i), int64(i), 1, 2)
	}
	if got := s.Bytes(); got > 320 {
		t.Fatalf("Bytes() = %d exceeds budget 320", got)
	}
	appended, written, esegs, erecs := s.Stats()
	if appended != n {
		t.Fatalf("appended = %d, want %d", appended, n)
	}
	if esegs == 0 || erecs == 0 {
		t.Fatalf("no eviction despite overflow: segs=%d recs=%d", esegs, erecs)
	}
	if int(erecs)+s.Records() != n {
		t.Fatalf("evicted %d + retained %d != appended %d", erecs, s.Records(), n)
	}
	if written != int64(s.Bytes())+int64(esegs)*74 {
		t.Fatalf("bytesWritten = %d, want retained %d + evicted %d segments * 74", written, s.Bytes(), esegs)
	}
	// The retained window is the most recent suffix, in order.
	recs := s.All()
	for i, r := range recs {
		if want := float64(n - len(recs) + i); r.T != want {
			t.Fatalf("retained[%d].T = %v, want %v (not a contiguous suffix)", i, r.T, want)
		}
	}
}

func TestStoreCostHookChargesEveryByte(t *testing.T) {
	s := NewStore(1 << 20)
	var hooked int64
	s.SetCostHook(func(b int) { hooked += int64(b) })
	s.AppendQuery(0, 1, 7, 0.25)
	for i := 0; i < 50; i++ {
		s.AppendPos(float64(i), 9, 1, 2)
	}
	_, written, _, _ := s.Stats()
	if hooked != written {
		t.Fatalf("cost hook charged %d bytes, store wrote %d", hooked, written)
	}
	if hooked != int64(s.Bytes()) {
		t.Fatalf("cost hook charged %d bytes, log holds %d", hooked, s.Bytes())
	}
}

func TestNilStoreIsDisabled(t *testing.T) {
	var s *Store
	s.AppendPos(0, 1, 2, 3) // must not panic
	s.AppendResult(0, 1, 1, 2, true)
	s.SetCostHook(func(int) {})
	if s.Bytes() != 0 || s.Records() != 0 || s.All() != nil {
		t.Fatal("nil store reported state")
	}
	if n, err := s.WriteTo(&bytes.Buffer{}); n != 0 || err != nil {
		t.Fatalf("nil WriteTo = %d, %v", n, err)
	}
}

func TestFramesReconstruction(t *testing.T) {
	frames := Frames(sampleRecords())
	// Timestamps 0, 0.5, 1, 1.5 -> four frames.
	if len(frames) != 4 {
		t.Fatalf("Frames = %d, want 4", len(frames))
	}
	f0 := frames[0]
	if f0.T != 0 || len(f0.Pos) != 2 || f0.Queries[1].Focal != 7 || f0.Queries[1].Radius != 0.25 {
		t.Fatalf("frame 0 = %+v", f0)
	}
	if len(f0.Results[1]) != 0 {
		t.Fatalf("frame 0 has premature results: %+v", f0.Results)
	}
	if !frames[1].Results[1][9] {
		t.Fatalf("frame 1 missing enter: %+v", frames[1].Results)
	}
	f2 := frames[2]
	if f2.Results[1][9] {
		t.Fatalf("frame 2 kept left object: %+v", f2.Results)
	}
	if p := f2.Pos[9]; p != [2]float64{9.125, 0.5} {
		t.Fatalf("frame 2 pos[9] = %v", p)
	}
	f3 := frames[3]
	if len(f3.Queries) != 0 {
		t.Fatalf("frame 3 kept removed query: %+v", f3.Queries)
	}
	// Positions persist across frames.
	if p := f3.Pos[7]; p != [2]float64{1.5, 2.5} {
		t.Fatalf("frame 3 pos[7] = %v", p)
	}
	if Frames(nil) != nil {
		t.Fatal("Frames(nil) != nil")
	}
}

func TestHTTPEndpoint(t *testing.T) {
	s := NewStore(1 << 20)
	s.AppendQuery(0, 1, 7, 0.25)
	s.AppendPos(0, 9, 1.5, 2.5)
	s.AppendResult(0.5, 1, 1, 9, true)

	mux := http.NewServeMux()
	Attach(mux, s)
	get := func(url string) *httptest.ResponseRecorder {
		rw := httptest.NewRecorder()
		mux.ServeHTTP(rw, httptest.NewRequest("GET", url, nil))
		return rw
	}

	if rw := get("/debug/history"); rw.Code != 200 || !strings.Contains(rw.Body.String(), "3 records") {
		t.Fatalf("summary: %d %q", rw.Code, rw.Body.String())
	}
	if rw := get("/debug/history?qid=1"); !strings.Contains(rw.Body.String(), "seq 1 oid 9 enter") {
		t.Fatalf("qid text: %q", rw.Body.String())
	}
	if rw := get("/debug/history?oid=9"); !strings.Contains(rw.Body.String(), "pos 1.500000 2.500000") {
		t.Fatalf("oid text: %q", rw.Body.String())
	}
	rw := get("/debug/history?qid=1&format=json")
	var recs []Record
	if err := json.Unmarshal(rw.Body.Bytes(), &recs); err != nil || len(recs) != 2 {
		t.Fatalf("qid json: %v %q", err, rw.Body.String())
	}
	if rw := get("/debug/history?qid=99&format=json"); strings.TrimSpace(rw.Body.String()) != "[]" {
		t.Fatalf("empty qid json = %q", rw.Body.String())
	}
	if rw := get("/debug/history?qid=bogus"); rw.Code != http.StatusBadRequest {
		t.Fatalf("bad qid: %d", rw.Code)
	}
	raw := get("/debug/history?format=raw")
	back, err := DecodeLog(raw.Body.Bytes())
	if err != nil || len(back) != 3 {
		t.Fatalf("raw decode: %v (%d records)", err, len(back))
	}

	// A nil store answers 404 so probes can tell "disabled" from "empty".
	mux2 := http.NewServeMux()
	Attach(mux2, nil)
	rw2 := httptest.NewRecorder()
	mux2.ServeHTTP(rw2, httptest.NewRequest("GET", "/debug/history", nil))
	if rw2.Code != http.StatusNotFound {
		t.Fatalf("nil store: %d", rw2.Code)
	}
}

func TestFloatFidelity(t *testing.T) {
	// Exact float64 bit patterns survive the log, including negatives and
	// denormals — the replay oracle depends on byte-identical re-encoding.
	vals := []float64{0, -0.0, 1e-310, math.MaxFloat64, -123.456}
	s := NewStore(1 << 20)
	for i, v := range vals {
		s.AppendPos(v, int64(i+1), v, -v)
	}
	for i, r := range s.All() {
		want := vals[i]
		if math.Float64bits(r.T) != math.Float64bits(want) ||
			math.Float64bits(r.X) != math.Float64bits(want) ||
			math.Float64bits(r.Y) != math.Float64bits(-want) {
			t.Fatalf("record %d = %+v, want %v bits", i, r, want)
		}
	}
}
