package grid

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"mobieyes/internal/geo"
)

// quickPoints bounds quick-generated coordinates to a sane neighborhood of
// the UoD (including outside-the-border cases, which clamp).
func quickPoints(args []reflect.Value, r *rand.Rand) {
	for i := range args {
		args[i] = reflect.ValueOf(r.Float64()*140 - 20)
	}
}

// Property: CellOf always returns a valid cell, and for in-UoD points the
// cell's rectangle contains the point.
func TestQuickCellOfTotality(t *testing.T) {
	g := New(geo.NewRect(0, 0, 100, 100), 5)
	f := func(x, y float64) bool {
		p := geo.Pt(x, y)
		c := g.CellOf(p)
		if !g.Valid(c) {
			return false
		}
		if g.UoD().Contains(p) && p.X < 100 && p.Y < 100 {
			return g.CellRect(c).Contains(p)
		}
		return true
	}
	cfg := &quick.Config{Rand: rand.New(rand.NewSource(1)), MaxCount: 2000, Values: quickPoints}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: the monitoring region always contains the focal cell and covers
// the bounding box.
func TestQuickMonitoringRegionCoversBoundingBox(t *testing.T) {
	g := New(geo.NewRect(0, 0, 100, 100), 5)
	f := func(x, y, r float64) bool {
		p := geo.Pt(clamp(x, 0, 99.99), clamp(y, 0, 99.99))
		radius := clamp(r, 0, 20)
		cell := g.CellOf(p)
		mr := g.MonitoringRegion(cell, radius)
		if !mr.Contains(cell) {
			return false
		}
		bb := g.BoundingBox(cell, radius)
		covered := g.RegionRect(mr)
		return covered.ContainsRect(bb.Intersection(g.UoD()))
	}
	cfg := &quick.Config{Rand: rand.New(rand.NewSource(2)), MaxCount: 2000, Values: quickPoints}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: CellIndex is a bijection onto [0, NumCells).
func TestQuickCellIndexBijective(t *testing.T) {
	g := New(geo.NewRect(0, 0, 100, 100), 7)
	f := func(x, y float64) bool {
		c := g.CellOf(geo.Pt(x, y))
		idx := g.CellIndex(c)
		return idx >= 0 && idx < g.NumCells() && g.CellAt(idx) == c
	}
	cfg := &quick.Config{Rand: rand.New(rand.NewSource(3)), MaxCount: 2000, Values: quickPoints}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
