package grid

import (
	"math"
	"math/rand"
	"testing"

	"mobieyes/internal/geo"
)

func testGrid() *Grid {
	return New(geo.NewRect(0, 0, 100, 100), 5)
}

func TestNewDimensions(t *testing.T) {
	g := testGrid()
	if g.Cols() != 20 || g.Rows() != 20 {
		t.Fatalf("dims = %dx%d, want 20x20", g.Cols(), g.Rows())
	}
	if g.NumCells() != 400 {
		t.Fatalf("NumCells = %d", g.NumCells())
	}
	if g.Alpha() != 5 {
		t.Fatalf("Alpha = %v", g.Alpha())
	}
}

func TestNewCeilDimensions(t *testing.T) {
	g := New(geo.NewRect(0, 0, 101, 99), 5)
	if g.Cols() != 21 {
		t.Errorf("Cols = %d, want ⌈101/5⌉ = 21", g.Cols())
	}
	if g.Rows() != 20 {
		t.Errorf("Rows = %d, want ⌈99/5⌉ = 20", g.Rows())
	}
}

func TestNewPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero alpha":     func() { New(geo.NewRect(0, 0, 1, 1), 0) },
		"negative alpha": func() { New(geo.NewRect(0, 0, 1, 1), -1) },
		"empty uod":      func() { New(geo.NewRect(0, 0, 0, 1), 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestCellOf(t *testing.T) {
	g := testGrid()
	cases := []struct {
		p    geo.Point
		want CellID
	}{
		{geo.Pt(0, 0), CellID{0, 0}},
		{geo.Pt(4.999, 4.999), CellID{0, 0}},
		{geo.Pt(5, 5), CellID{1, 1}},
		{geo.Pt(99.9, 99.9), CellID{19, 19}},
		{geo.Pt(100, 100), CellID{19, 19}}, // clamped boundary
		{geo.Pt(-3, 50), CellID{0, 10}},    // clamped outside
		{geo.Pt(200, -1), CellID{19, 0}},   // clamped outside
		{geo.Pt(52.5, 12.5), CellID{10, 2}},
	}
	for _, c := range cases {
		if got := g.CellOf(c.p); got != c.want {
			t.Errorf("CellOf(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestCellOfNonZeroOrigin(t *testing.T) {
	g := New(geo.NewRect(-50, -50, 100, 100), 10)
	if got := g.CellOf(geo.Pt(-50, -50)); got != (CellID{0, 0}) {
		t.Errorf("CellOf origin = %v", got)
	}
	if got := g.CellOf(geo.Pt(0, 0)); got != (CellID{5, 5}) {
		t.Errorf("CellOf(0,0) = %v", got)
	}
}

// Property: every point inside the UoD lies inside the rect of its cell.
func TestCellOfRoundTrip(t *testing.T) {
	g := testGrid()
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 1000; i++ {
		p := geo.Pt(rng.Float64()*100, rng.Float64()*100)
		c := g.CellOf(p)
		if !g.Valid(c) {
			t.Fatalf("invalid cell %v for %v", c, p)
		}
		if !g.CellRect(c).Contains(p) {
			t.Fatalf("cell rect %v does not contain %v", g.CellRect(c), p)
		}
	}
}

func TestCellIndexRoundTrip(t *testing.T) {
	g := testGrid()
	for row := 0; row < g.Rows(); row++ {
		for col := 0; col < g.Cols(); col++ {
			c := CellID{col, row}
			idx := g.CellIndex(c)
			if idx < 0 || idx >= g.NumCells() {
				t.Fatalf("index %d out of range for %v", idx, c)
			}
			if back := g.CellAt(idx); back != c {
				t.Fatalf("CellAt(CellIndex(%v)) = %v", c, back)
			}
		}
	}
}

func TestCellRect(t *testing.T) {
	g := testGrid()
	r := g.CellRect(CellID{3, 7})
	want := geo.NewRect(15, 35, 5, 5)
	if r != want {
		t.Errorf("CellRect = %v, want %v", r, want)
	}
}

func TestBoundingBox(t *testing.T) {
	g := testGrid()
	bb := g.BoundingBox(CellID{2, 2}, 3)
	// Cell (2,2) spans [10,15]×[10,15]; bbox = [7,18]×[7,18].
	want := geo.NewRect(7, 7, 11, 11)
	if bb != want {
		t.Errorf("BoundingBox = %v, want %v", bb, want)
	}
}

// Property (paper definition): the bounding box covers the query circle for
// any focal position inside the cell.
func TestBoundingBoxCoversQueryRegion(t *testing.T) {
	g := testGrid()
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 500; i++ {
		cell := CellID{rng.Intn(20), rng.Intn(20)}
		cr := g.CellRect(cell)
		r := rng.Float64() * 8
		// Random focal position inside the cell.
		fp := geo.Pt(cr.LX+rng.Float64()*cr.W(), cr.LY+rng.Float64()*cr.H())
		region := geo.NewCircle(fp, r)
		bb := g.BoundingBox(cell, r)
		if !bb.ContainsRect(region.BoundingRect()) {
			t.Fatalf("bbox %v does not cover query region %v (cell %v)", bb, region, cell)
		}
	}
}

func TestMonitoringRegion(t *testing.T) {
	g := testGrid()
	// Cell (4,4) spans [20,25]². Radius 3 → bbox [17,28]², which intersects
	// cells with cols/rows 3..5.
	mr := g.MonitoringRegion(CellID{4, 4}, 3)
	want := CellRange{Min: CellID{3, 3}, Max: CellID{5, 5}}
	if mr != want {
		t.Errorf("MonitoringRegion = %v, want %v", mr, want)
	}
	if mr.NumCells() != 9 {
		t.Errorf("NumCells = %d, want 9", mr.NumCells())
	}
}

func TestMonitoringRegionClipped(t *testing.T) {
	g := testGrid()
	mr := g.MonitoringRegion(CellID{0, 0}, 3)
	want := CellRange{Min: CellID{0, 0}, Max: CellID{1, 1}}
	if mr != want {
		t.Errorf("MonitoringRegion at corner = %v, want %v", mr, want)
	}
}

func TestMonitoringRegionBoundaryAligned(t *testing.T) {
	g := testGrid()
	// Radius 0: bbox is exactly the cell [10,15]². Its high edge touches
	// cells at col/row 3, so the closed-interval intersection includes them.
	mr := g.MonitoringRegion(CellID{2, 2}, 0)
	want := CellRange{Min: CellID{2, 2}, Max: CellID{3, 3}}
	if mr != want {
		t.Errorf("MonitoringRegion radius 0 = %v, want %v", mr, want)
	}
}

// Property (paper §2.3): the monitoring region covers every object that can
// be inside the query region while the focal object stays in its cell.
func TestMonitoringRegionCoversTargets(t *testing.T) {
	g := testGrid()
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 500; i++ {
		cell := CellID{rng.Intn(20), rng.Intn(20)}
		cr := g.CellRect(cell)
		r := rng.Float64()*6 + 0.1
		fp := geo.Pt(cr.LX+rng.Float64()*cr.W(), cr.LY+rng.Float64()*cr.H())
		mr := g.MonitoringRegion(cell, r)
		// Random target inside the query region (and inside the UoD).
		ang := rng.Float64() * 2 * math.Pi
		dist := rng.Float64() * r
		tp := geo.Pt(fp.X+dist*math.Cos(ang), fp.Y+dist*math.Sin(ang))
		if !g.UoD().Contains(tp) {
			continue
		}
		if !mr.Contains(g.CellOf(tp)) {
			t.Fatalf("target %v (cell %v) outside monitoring region %v (focal %v, r=%v)",
				tp, g.CellOf(tp), mr, fp, r)
		}
	}
}

func TestCellRangeOps(t *testing.T) {
	a := CellRange{Min: CellID{1, 1}, Max: CellID{3, 3}}
	b := CellRange{Min: CellID{3, 3}, Max: CellID{5, 5}}
	c := CellRange{Min: CellID{4, 0}, Max: CellID{5, 2}}

	if !a.Intersects(b) {
		t.Error("a should intersect b (shared corner cell)")
	}
	if a.Intersects(c) {
		t.Error("a should not intersect c")
	}
	u := a.Union(b)
	if u != (CellRange{Min: CellID{1, 1}, Max: CellID{5, 5}}) {
		t.Errorf("Union = %v", u)
	}
	if !a.Equal(a) || a.Equal(b) {
		t.Error("Equal misbehaves")
	}

	count := 0
	a.ForEach(func(CellID) { count++ })
	if count != 9 || count != a.NumCells() {
		t.Errorf("ForEach visited %d cells, NumCells = %d", count, a.NumCells())
	}
}

func TestCellRangeContains(t *testing.T) {
	cr := CellRange{Min: CellID{2, 3}, Max: CellID{4, 6}}
	if !cr.Contains(CellID{2, 3}) || !cr.Contains(CellID{4, 6}) || !cr.Contains(CellID{3, 4}) {
		t.Error("range should contain its corners and interior")
	}
	for _, c := range []CellID{{1, 3}, {5, 3}, {2, 2}, {2, 7}} {
		if cr.Contains(c) {
			t.Errorf("range should not contain %v", c)
		}
	}
}

func TestCellsIntersecting(t *testing.T) {
	g := testGrid()
	cr := g.CellsIntersecting(geo.NewRect(12, 12, 6, 6)) // [12,18]²
	want := CellRange{Min: CellID{2, 2}, Max: CellID{3, 3}}
	if cr != want {
		t.Errorf("CellsIntersecting = %v, want %v", cr, want)
	}
	// Fully outside rect clamps to border cells rather than panicking.
	out := g.CellsIntersecting(geo.NewRect(200, 200, 5, 5))
	if !g.Valid(out.Min) || !g.Valid(out.Max) {
		t.Errorf("clipped range invalid: %v", out)
	}
}

func TestRegionRect(t *testing.T) {
	g := testGrid()
	cr := CellRange{Min: CellID{1, 2}, Max: CellID{3, 4}}
	r := g.RegionRect(cr)
	want := geo.NewRect(5, 10, 15, 15)
	if r != want {
		t.Errorf("RegionRect = %v, want %v", r, want)
	}
}

// Property: CellsIntersecting agrees with a brute-force scan over all cells.
func TestCellsIntersectingBruteForce(t *testing.T) {
	g := New(geo.NewRect(0, 0, 50, 50), 5)
	rng := rand.New(rand.NewSource(19))
	for i := 0; i < 300; i++ {
		r := geo.NewRect(rng.Float64()*60-5, rng.Float64()*60-5, rng.Float64()*20, rng.Float64()*20)
		got := g.CellsIntersecting(r)
		for row := 0; row < g.Rows(); row++ {
			for col := 0; col < g.Cols(); col++ {
				c := CellID{col, row}
				inRange := got.Contains(c)
				intersects := g.CellRect(c).Intersects(r)
				// The clipped range may include border cells that do not
				// intersect (when r lies outside the UoD); only flag cells
				// that intersect but were excluded.
				if intersects && !inRange {
					t.Fatalf("cell %v intersects %v but not in range %v", c, r, got)
				}
			}
		}
	}
}

func BenchmarkCellOf(b *testing.B) {
	g := testGrid()
	p := geo.Pt(52.5, 12.5)
	for i := 0; i < b.N; i++ {
		_ = g.CellOf(p)
	}
}

func BenchmarkMonitoringRegion(b *testing.B) {
	g := testGrid()
	for i := 0; i < b.N; i++ {
		_ = g.MonitoringRegion(CellID{4, 4}, 3)
	}
}
