// Package grid implements the grid decomposition of the universe of
// discourse defined in §2.2 of the MobiEyes paper: the UoD rectangle is
// mapped onto a grid G of α×α cells, and the paper's Pmap (position → cell),
// bounding box and monitoring region constructions are provided as methods.
//
// Cells are addressed by integer indices (Col, Row) with (0, 0) at the
// lower-left corner of the UoD. The paper indexes from 1; we use 0-based
// indices internally, which changes nothing observable.
package grid

import (
	"fmt"
	"math"

	"mobieyes/internal/geo"
)

// CellID identifies a grid cell by column (x) and row (y).
type CellID struct {
	Col, Row int
}

// String implements fmt.Stringer.
func (c CellID) String() string { return fmt.Sprintf("cell(%d,%d)", c.Col, c.Row) }

// Grid partitions a universe of discourse into α×α cells.
type Grid struct {
	uod   geo.Rect
	alpha float64
	cols  int // N = ⌈W/α⌉
	rows  int // M = ⌈H/α⌉
}

// New returns a grid over the universe of discourse u with cell side alpha.
// It panics if alpha is not positive or u has non-positive extent, since a
// grid is a system-level configuration object and such values are programmer
// errors, not runtime conditions.
func New(u geo.Rect, alpha float64) *Grid {
	if alpha <= 0 {
		panic(fmt.Sprintf("grid: non-positive cell side %v", alpha))
	}
	if u.W() <= 0 || u.H() <= 0 {
		panic(fmt.Sprintf("grid: degenerate universe of discourse %v", u))
	}
	return &Grid{
		uod:   u,
		alpha: alpha,
		cols:  int(math.Ceil(u.W() / alpha)),
		rows:  int(math.Ceil(u.H() / alpha)),
	}
}

// UoD returns the universe of discourse.
func (g *Grid) UoD() geo.Rect { return g.uod }

// Alpha returns the cell side length α.
func (g *Grid) Alpha() float64 { return g.alpha }

// Cols returns the number of grid columns (N in the paper).
func (g *Grid) Cols() int { return g.cols }

// Rows returns the number of grid rows (M in the paper).
func (g *Grid) Rows() int { return g.rows }

// NumCells returns the total number of cells.
func (g *Grid) NumCells() int { return g.cols * g.rows }

// CellOf is the paper's Pmap: it maps a position to the cell containing it.
// Positions outside the UoD are clamped to the nearest border cell, so that
// objects that drift slightly past the boundary (floating point, or bounce
// handling in the workload) still resolve to a valid cell.
func (g *Grid) CellOf(p geo.Point) CellID {
	col := int(math.Floor((p.X - g.uod.LX) / g.alpha))
	row := int(math.Floor((p.Y - g.uod.LY) / g.alpha))
	return g.clamp(CellID{col, row})
}

func (g *Grid) clamp(c CellID) CellID {
	if c.Col < 0 {
		c.Col = 0
	} else if c.Col >= g.cols {
		c.Col = g.cols - 1
	}
	if c.Row < 0 {
		c.Row = 0
	} else if c.Row >= g.rows {
		c.Row = g.rows - 1
	}
	return c
}

// Valid reports whether c addresses a cell inside the grid.
func (g *Grid) Valid(c CellID) bool {
	return c.Col >= 0 && c.Col < g.cols && c.Row >= 0 && c.Row < g.rows
}

// CellRect returns the rectangle covered by cell c, i.e. the paper's
// A_{i,j} = Rect(X + i·α, Y + j·α, α, α).
func (g *Grid) CellRect(c CellID) geo.Rect {
	return geo.NewRect(
		g.uod.LX+float64(c.Col)*g.alpha,
		g.uod.LY+float64(c.Row)*g.alpha,
		g.alpha, g.alpha,
	)
}

// CellIndex returns a dense index for c suitable for array-backed tables
// such as the reverse query index RQI.
func (g *Grid) CellIndex(c CellID) int { return c.Row*g.cols + c.Col }

// CellAt is the inverse of CellIndex.
func (g *Grid) CellAt(idx int) CellID {
	return CellID{Col: idx % g.cols, Row: idx / g.cols}
}

// BoundingBox returns the paper's bound_box(q) for a circular query region
// of radius r whose focal object currently resides in cell rc:
// Rect(rc.lx − r, rc.ly − r, α + 2r, α + 2r). It covers every position the
// query region can reach while the focal object stays inside rc.
func (g *Grid) BoundingBox(rc CellID, r float64) geo.Rect {
	cr := g.CellRect(rc)
	return geo.NewRect(cr.LX-r, cr.LY-r, g.alpha+2*r, g.alpha+2*r)
}

// CellRange is a rectangular span of grid cells, inclusive on both ends.
// It is the compact representation of a monitoring region: because a
// monitoring region is the set of cells intersecting an axis-aligned
// bounding box, it is always a contiguous rectangle of cells.
type CellRange struct {
	Min, Max CellID
}

// Contains reports whether c lies inside the range.
func (cr CellRange) Contains(c CellID) bool {
	return c.Col >= cr.Min.Col && c.Col <= cr.Max.Col &&
		c.Row >= cr.Min.Row && c.Row <= cr.Max.Row
}

// NumCells returns the number of cells spanned.
func (cr CellRange) NumCells() int {
	return (cr.Max.Col - cr.Min.Col + 1) * (cr.Max.Row - cr.Min.Row + 1)
}

// Intersects reports whether two cell ranges share at least one cell.
func (cr CellRange) Intersects(o CellRange) bool {
	return cr.Min.Col <= o.Max.Col && o.Min.Col <= cr.Max.Col &&
		cr.Min.Row <= o.Max.Row && o.Min.Row <= cr.Max.Row
}

// Union returns the smallest cell range containing both cr and o.
func (cr CellRange) Union(o CellRange) CellRange {
	u := cr
	if o.Min.Col < u.Min.Col {
		u.Min.Col = o.Min.Col
	}
	if o.Min.Row < u.Min.Row {
		u.Min.Row = o.Min.Row
	}
	if o.Max.Col > u.Max.Col {
		u.Max.Col = o.Max.Col
	}
	if o.Max.Row > u.Max.Row {
		u.Max.Row = o.Max.Row
	}
	return u
}

// Equal reports whether two cell ranges span exactly the same cells.
func (cr CellRange) Equal(o CellRange) bool { return cr == o }

// ForEach calls fn for every cell in the range, row by row.
func (cr CellRange) ForEach(fn func(CellID)) {
	for row := cr.Min.Row; row <= cr.Max.Row; row++ {
		for col := cr.Min.Col; col <= cr.Max.Col; col++ {
			fn(CellID{col, row})
		}
	}
}

// String implements fmt.Stringer.
func (cr CellRange) String() string {
	return fmt.Sprintf("cells[%d..%d, %d..%d]", cr.Min.Col, cr.Max.Col, cr.Min.Row, cr.Max.Row)
}

// CellsIntersecting returns the range of cells whose rectangles intersect r,
// clipped to the grid.
func (g *Grid) CellsIntersecting(r geo.Rect) CellRange {
	minCol := int(math.Floor((r.LX - g.uod.LX) / g.alpha))
	minRow := int(math.Floor((r.LY - g.uod.LY) / g.alpha))
	maxCol := int(math.Floor((r.HX - g.uod.LX) / g.alpha))
	maxRow := int(math.Floor((r.HY - g.uod.LY) / g.alpha))
	// A rect whose high edge lies exactly on a cell boundary still
	// intersects the next cell (closed intervals), so only pull back when
	// the computed index exceeds the grid.
	return CellRange{
		Min: g.clamp(CellID{minCol, minRow}),
		Max: g.clamp(CellID{maxCol, maxRow}),
	}
}

// MonitoringRegion returns the paper's mon_region(q): the set of grid cells
// intersecting the bounding box of a circular query of radius r whose focal
// object resides in cell rc. The result covers every object that can become
// a target of the query while the focal object stays in rc.
func (g *Grid) MonitoringRegion(rc CellID, r float64) CellRange {
	return g.CellsIntersecting(g.BoundingBox(rc, r))
}

// RegionRect returns the rectangle covered by a cell range.
func (g *Grid) RegionRect(cr CellRange) geo.Rect {
	lo := g.CellRect(cr.Min)
	hi := g.CellRect(cr.Max)
	return geo.RectFromCorners(geo.Pt(lo.LX, lo.LY), geo.Pt(hi.HX, hi.HY))
}
